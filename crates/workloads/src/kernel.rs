//! Composable access-pattern kernels.
//!
//! Each Table II benchmark is reproduced as a composition of a few access
//! patterns (DESIGN.md §4). A [`Kernel`] is a *pure function* from
//! `(wavefront, instruction index)` to the per-lane virtual addresses of
//! that SIMD instruction, so instruction streams are deterministic,
//! replayable, and need no per-instruction storage.
//!
//! The patterns:
//!
//! * [`Kernel::Strided`] — each lane owns a matrix row and walks it
//!   element-by-element; lanes are `row_stride` bytes apart, so one
//!   instruction touches up to 64 distinct pages (full memory-access
//!   divergence) while consecutive instructions of the same wavefront
//!   reuse the same pages (~512 iterations per 4 KiB page of doubles) —
//!   the MVT/ATAX/BICG/GESUMMV/NW hot-loop shape;
//! * [`Kernel::Coalesced`] — classic unit-stride streaming; 64 lanes fall
//!   on one or two pages (the regular benchmarks, and the vector operands
//!   of the linear-algebra kernels);
//! * [`Kernel::Gather`] — `groups` random elements per instruction, lanes
//!   divided evenly among them (XSBench's Monte-Carlo lookups at
//!   `groups = 64`, graph-frontier neighbour gathers at `groups ≈ 8`);
//! * [`Kernel::Interleaved`] — every `period`-th instruction comes from a
//!   secondary kernel (matrix row reads interleaved with vector reads).

use ptw_types::addr::VirtAddr;
use ptw_types::ids::WavefrontId;
use ptw_types::rng::SplitMix64;

/// Number of work-items (lanes) per wavefront (Table I: 64).
pub const LANES: u64 = 64;

/// A resolved buffer placement a kernel reads from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BufferRef {
    /// First virtual address of the buffer.
    pub base: VirtAddr,
    /// Buffer length in bytes.
    pub len: u64,
}

impl BufferRef {
    fn at(&self, offset: u64) -> VirtAddr {
        debug_assert!(offset < self.len, "kernel address out of buffer");
        self.base + offset
    }
}

/// A deterministic SIMD-instruction generator.
#[derive(Clone, Debug)]
pub enum Kernel {
    /// Row-per-lane strided access (divergent linear algebra).
    Strided {
        /// The matrix buffer.
        buffer: BufferRef,
        /// Total rows in the matrix; lane rows wrap modulo this.
        rows: u64,
        /// Bytes between consecutive rows (≥ 4 KiB ⇒ full divergence).
        row_stride: u64,
        /// Element size in bytes.
        elem: u64,
        /// Instructions per wavefront.
        iters: u64,
        /// Per-lane column skew (diagonal wavefront patterns like NW).
        skew: bool,
    },
    /// Unit-stride streaming access (regular kernels, vector operands).
    Coalesced {
        /// The streamed buffer.
        buffer: BufferRef,
        /// Element size in bytes.
        elem: u64,
        /// Instructions per wavefront.
        iters: u64,
    },
    /// Random gather of `groups` distinct elements per instruction.
    Gather {
        /// The lookup table.
        buffer: BufferRef,
        /// Element size in bytes.
        elem: u64,
        /// Instructions per wavefront.
        iters: u64,
        /// Distinct random targets per instruction (lanes share evenly);
        /// 64 = fully divergent, 1 = fully coalesced.
        groups: u64,
        /// Stream seed (combined with wavefront and instruction index).
        seed: u64,
    },
    /// `primary` with every `period`-th instruction drawn from `secondary`.
    Interleaved {
        /// The dominant pattern.
        primary: Box<Kernel>,
        /// The interleaved pattern (e.g. a coalesced vector read).
        secondary: Box<Kernel>,
        /// Every `period`-th instruction is secondary (period ≥ 2).
        period: u64,
    },
}

impl Kernel {
    /// Instructions this kernel issues per wavefront.
    pub fn iters(&self) -> u64 {
        match self {
            Kernel::Strided { iters, .. }
            | Kernel::Coalesced { iters, .. }
            | Kernel::Gather { iters, .. } => *iters,
            Kernel::Interleaved { primary, .. } => primary.iters(),
        }
    }

    /// The per-lane addresses of instruction `idx` of wavefront `wf`, or
    /// `None` when `idx` is past the end of the kernel.
    pub fn instruction(&self, wf: WavefrontId, idx: u64) -> Option<Vec<VirtAddr>> {
        let mut out = Vec::with_capacity(LANES as usize);
        self.instruction_into(wf, idx, &mut out).then_some(out)
    }

    /// Allocation-free form of [`instruction`](Self::instruction): writes
    /// the per-lane addresses into `out` (cleared first) and returns
    /// `false` when `idx` is past the end of the kernel. The simulator
    /// recycles one buffer across every issued instruction.
    pub fn instruction_into(&self, wf: WavefrontId, idx: u64, out: &mut Vec<VirtAddr>) -> bool {
        if idx >= self.iters() {
            return false;
        }
        out.clear();
        match self {
            Kernel::Strided {
                buffer,
                rows,
                row_stride,
                elem,
                skew,
                ..
            } => {
                let row_elems = row_stride / elem;
                out.extend((0..LANES).map(|lane| {
                    let row = (wf.0 as u64 * LANES + lane) % rows;
                    let col = if *skew {
                        (idx + lane) % row_elems
                    } else {
                        idx % row_elems
                    };
                    buffer.at(row * row_stride + col * elem)
                }));
            }
            Kernel::Coalesced {
                buffer,
                elem,
                iters,
            } => {
                let elems = buffer.len / elem;
                // Wrapping keeps the math well-defined for the effectively
                // unbounded secondary kernels inside `Interleaved`.
                let stream = (wf.0 as u64).wrapping_mul(*iters).wrapping_add(idx);
                out.extend((0..LANES).map(|lane| {
                    let index = stream.wrapping_mul(LANES).wrapping_add(lane);
                    buffer.at((index % elems) * elem)
                }));
            }
            Kernel::Gather {
                buffer,
                elem,
                groups,
                seed,
                ..
            } => {
                let elems = buffer.len / elem;
                let mut rng = SplitMix64::new(
                    seed ^ (wf.0 as u64).wrapping_mul(0x9e37_79b9_97f4_a7c1)
                        ^ idx.wrapping_mul(0xd1b5_4a32_d192_ed03),
                );
                // Targets fit on the stack for every real group count
                // (groups ≤ lanes); the heap path only backs degenerate
                // configurations.
                let mut stack = [0u64; LANES as usize];
                let heap: Vec<u64>;
                let targets: &[u64] = if *groups <= LANES {
                    for t in stack.iter_mut().take(*groups as usize) {
                        *t = rng.next_below(elems) * elem;
                    }
                    &stack[..*groups as usize]
                } else {
                    heap = (0..*groups).map(|_| rng.next_below(elems) * elem).collect();
                    &heap
                };
                let per_group = LANES / groups.max(&1);
                out.extend((0..LANES).map(|lane| {
                    let g = (lane / per_group.max(1)).min(targets.len() as u64 - 1);
                    buffer.at(targets[g as usize])
                }));
            }
            Kernel::Interleaved {
                primary,
                secondary,
                period,
            } => {
                debug_assert!(*period >= 2, "interleave period must be >= 2");
                if idx % period == period - 1 {
                    let sec_idx = (idx / period) % secondary.iters();
                    return secondary.instruction_into(wf, sec_idx, out);
                }
                return primary.instruction_into(wf, idx, out);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptw_gpu::coalesce;

    fn buf(base: u64, len: u64) -> BufferRef {
        BufferRef {
            base: VirtAddr::new(base),
            len,
        }
    }

    #[test]
    fn strided_is_fully_divergent_with_page_rows() {
        let k = Kernel::Strided {
            buffer: buf(0x10_0000, 64 * 4096 * 64),
            rows: 64 * 64,
            row_stride: 4096,
            elem: 8,
            iters: 10,
            skew: false,
        };
        let addrs = k.instruction(WavefrontId(0), 0).unwrap();
        assert_eq!(addrs.len(), 64);
        let r = coalesce(&addrs);
        assert_eq!(r.page_divergence(), 64);
    }

    #[test]
    fn strided_reuses_pages_across_iterations() {
        let k = Kernel::Strided {
            buffer: buf(0x10_0000, 64 * 4096),
            rows: 64,
            row_stride: 4096,
            elem: 8,
            iters: 512,
            skew: false,
        };
        let a0 = k.instruction(WavefrontId(0), 0).unwrap();
        let a1 = k.instruction(WavefrontId(0), 1).unwrap();
        // Same pages, different offsets.
        for (x, y) in a0.iter().zip(&a1) {
            assert_eq!(x.page(), y.page());
            assert_ne!(x, y);
        }
    }

    #[test]
    fn strided_distinct_wavefronts_use_distinct_rows() {
        let k = Kernel::Strided {
            buffer: buf(0, 128 * 4096),
            rows: 128,
            row_stride: 4096,
            elem: 8,
            iters: 4,
            skew: false,
        };
        let a = k.instruction(WavefrontId(0), 0).unwrap();
        let b = k.instruction(WavefrontId(1), 0).unwrap();
        assert_ne!(a[0].page(), b[0].page());
    }

    #[test]
    fn coalesced_touches_one_or_two_pages() {
        let k = Kernel::Coalesced {
            buffer: buf(0x20_0000, 1 << 20),
            elem: 8,
            iters: 100,
        };
        for idx in 0..100 {
            let addrs = k.instruction(WavefrontId(3), idx).unwrap();
            let r = coalesce(&addrs);
            assert!(
                r.page_divergence() <= 2,
                "idx {idx}: {}",
                r.page_divergence()
            );
        }
    }

    #[test]
    fn coalesced_streams_forward() {
        let k = Kernel::Coalesced {
            buffer: buf(0, 1 << 20),
            elem: 8,
            iters: 100,
        };
        let a = k.instruction(WavefrontId(0), 0).unwrap();
        let b = k.instruction(WavefrontId(0), 1).unwrap();
        assert_eq!(b[0] - a[0], 64 * 8);
    }

    #[test]
    fn gather_is_deterministic_and_bounded() {
        let k = Kernel::Gather {
            buffer: buf(0x40_0000, 1 << 22),
            elem: 8,
            iters: 50,
            groups: 64,
            seed: 7,
        };
        let a = k.instruction(WavefrontId(1), 5).unwrap();
        let b = k.instruction(WavefrontId(1), 5).unwrap();
        assert_eq!(a, b);
        for addr in &a {
            assert!(addr.raw() >= 0x40_0000 && addr.raw() < 0x40_0000 + (1 << 22));
        }
    }

    #[test]
    fn gather_group_count_limits_divergence() {
        let k = Kernel::Gather {
            buffer: buf(0, 1 << 26),
            elem: 8,
            iters: 10,
            groups: 8,
            seed: 3,
        };
        for idx in 0..10 {
            let addrs = k.instruction(WavefrontId(0), idx).unwrap();
            let r = coalesce(&addrs);
            assert!(r.page_divergence() <= 8);
        }
    }

    #[test]
    fn gather_full_divergence_mostly_distinct_pages() {
        let k = Kernel::Gather {
            buffer: buf(0, 1 << 26), // 64 MiB = 16384 pages
            elem: 8,
            iters: 1,
            groups: 64,
            seed: 11,
        };
        let addrs = k.instruction(WavefrontId(0), 0).unwrap();
        let r = coalesce(&addrs);
        assert!(r.page_divergence() > 55, "got {}", r.page_divergence());
    }

    #[test]
    fn interleaved_switches_every_period() {
        let primary = Kernel::Strided {
            buffer: buf(0x10_0000, 64 * 64 * 4096),
            rows: 64 * 64,
            row_stride: 4096,
            elem: 8,
            iters: 20,
            skew: false,
        };
        let secondary = Kernel::Coalesced {
            buffer: buf(0x8000_0000, 1 << 16),
            elem: 8,
            iters: 20,
        };
        let k = Kernel::Interleaved {
            primary: Box::new(primary),
            secondary: Box::new(secondary),
            period: 4,
        };
        for idx in 0..20 {
            let addrs = k.instruction(WavefrontId(0), idx).unwrap();
            let div = coalesce(&addrs).page_divergence();
            if idx % 4 == 3 {
                assert!(div <= 2, "idx {idx} should be coalesced");
            } else {
                assert_eq!(div, 64, "idx {idx} should be divergent");
            }
        }
    }

    #[test]
    fn iteration_bounds_are_respected() {
        let k = Kernel::Coalesced {
            buffer: buf(0, 1 << 20),
            elem: 8,
            iters: 3,
        };
        assert!(k.instruction(WavefrontId(0), 2).is_some());
        assert!(k.instruction(WavefrontId(0), 3).is_none());
    }

    #[test]
    fn into_form_matches_allocating_form() {
        let gather = Kernel::Gather {
            buffer: buf(0x40_0000, 1 << 22),
            elem: 8,
            iters: 5,
            groups: 8,
            seed: 7,
        };
        let k = Kernel::Interleaved {
            primary: Box::new(gather),
            secondary: Box::new(Kernel::Coalesced {
                buffer: buf(0x8000_0000, 1 << 16),
                elem: 8,
                iters: 5,
            }),
            period: 2,
        };
        let mut out = vec![VirtAddr::new(0xdead)];
        for wf in [WavefrontId(0), WavefrontId(3)] {
            for idx in 0..6 {
                let direct = k.instruction(wf, idx);
                let ok = k.instruction_into(wf, idx, &mut out);
                assert_eq!(ok, direct.is_some(), "wf {wf:?} idx {idx}");
                if let Some(direct) = direct {
                    assert_eq!(out, direct, "wf {wf:?} idx {idx}");
                }
            }
        }
    }

    #[test]
    fn strided_row_wraparound_stays_in_buffer() {
        let k = Kernel::Strided {
            buffer: buf(0, 16 * 4096),
            rows: 16, // fewer rows than lanes: wraps
            row_stride: 4096,
            elem: 8,
            iters: 2,
            skew: false,
        };
        let addrs = k.instruction(WavefrontId(5), 1).unwrap();
        for a in addrs {
            assert!(a.raw() < 16 * 4096);
        }
    }

    #[test]
    fn skewed_strided_shifts_columns_per_lane() {
        let k = Kernel::Strided {
            buffer: buf(0, 64 * 4096),
            rows: 64,
            row_stride: 4096,
            elem: 8,
            iters: 4,
            skew: true,
        };
        let addrs = k.instruction(WavefrontId(0), 0).unwrap();
        assert_ne!(addrs[0].page_offset(), addrs[1].page_offset());
    }
}
