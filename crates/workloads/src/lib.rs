//! Synthetic reproductions of the paper's Table II benchmarks.
//!
//! The paper runs unmodified OpenCL/HCC binaries under gem5; a Rust
//! simulator cannot. Each benchmark is therefore substituted by a
//! *synthetic kernel generator* that emits the same per-wavefront SIMD
//! memory-access pattern the benchmark's hot loops produce — preserving the
//! properties the paper's results rest on: per-instruction page divergence
//! (Figure 3), inter-instruction page reuse (which makes TLB thrashing and
//! its relief by scheduling possible, Figures 11–12), and footprints that
//! dwarf the TLB reach (Table II). DESIGN.md §4 documents the substitution
//! per benchmark.
//!
//! * [`kernel`] — the composable access-pattern primitives;
//! * [`registry`] — [`BenchmarkId`], Table II metadata, and
//!   [`registry::build`] which assembles a [`Workload`];
//! * [`workload`] — the built workload implementing
//!   [`ptw_gpu::InstructionStream`].
//!
//! # Example
//!
//! ```
//! use ptw_gpu::{coalesce, InstructionStream};
//! use ptw_workloads::{build, BenchmarkId, Scale};
//! use ptw_types::ids::WavefrontId;
//!
//! let mut mvt = build(BenchmarkId::Mvt, Scale::Small, 42);
//! let addrs = mvt.next_instruction(WavefrontId(0)).unwrap();
//! // MVT's row-per-lane kernel is fully divergent:
//! assert_eq!(coalesce(&addrs).page_divergence(), 64);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod kernel;
pub mod registry;
pub mod workload;

pub use kernel::{BufferRef, Kernel, LANES};
pub use registry::{build, build_with_large_pages, BenchmarkId, Scale};
pub use workload::Workload;
