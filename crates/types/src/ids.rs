//! Newtyped identifiers used across the simulator.
//!
//! The paper attaches a 20-bit *instruction ID* to every page walk request so
//! the IOMMU scheduler can group walks of the same SIMD instruction
//! ([`InstrId`]). The remaining IDs identify hardware structures: compute
//! units ([`CuId`]), wavefronts ([`WavefrontId`]), SIMD lanes ([`LaneId`])
//! and IOMMU page-table walkers ([`WalkerId`]).

use core::fmt;

/// Number of bits the paper budgets for the per-request instruction ID.
pub const INSTR_ID_BITS: u32 = 20;

/// Identifier of a compute unit (CU) inside the GPU.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CuId(pub u16);

/// Globally unique identifier of a wavefront (across all CUs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WavefrontId(pub u32);

/// Identifier of a SIMD lane (work-item slot) within a wavefront.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LaneId(pub u8);

/// Identifier of one of the IOMMU's hardware page-table walkers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WalkerId(pub u8);

/// The 20-bit dynamic SIMD-instruction identifier carried by each page walk
/// request (Section IV of the paper).
///
/// IDs are assigned from a monotonically increasing counter and wrap at
/// 2^20. The wrap is harmless: an ID only needs to be unique among the walk
/// requests that are *concurrently pending* in the IOMMU buffer (at most a
/// few hundred), and 2^20 in-flight instructions would exceed any real
/// machine by orders of magnitude.
///
/// ```
/// use ptw_types::ids::InstrId;
/// let mut alloc = InstrId::allocator();
/// let a = alloc.next_id();
/// let b = alloc.next_id();
/// assert_ne!(a, b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InstrId(u32);

impl InstrId {
    /// Mask of the valid ID bits.
    pub const MASK: u32 = (1 << INSTR_ID_BITS) - 1;

    /// Creates an instruction ID from a raw value (truncated to 20 bits).
    pub const fn new(raw: u32) -> Self {
        InstrId(raw & Self::MASK)
    }

    /// Returns the raw 20-bit value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns a fresh allocator starting at ID 0.
    pub fn allocator() -> InstrIdAllocator {
        InstrIdAllocator { next: 0 }
    }
}

/// Monotonic allocator for [`InstrId`]s, wrapping at 2^20.
#[derive(Clone, Debug, Default)]
pub struct InstrIdAllocator {
    next: u32,
}

impl InstrIdAllocator {
    /// Creates an allocator starting at ID 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the next instruction ID, advancing the counter.
    pub fn next_id(&mut self) -> InstrId {
        let id = InstrId::new(self.next);
        self.next = (self.next + 1) & InstrId::MASK;
        id
    }
}

macro_rules! impl_id_fmt {
    ($ty:ident, $tag:literal) => {
        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "({})"), self.0)
            }
        }
        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

impl_id_fmt!(CuId, "cu");
impl_id_fmt!(WavefrontId, "wf");
impl_id_fmt!(LaneId, "lane");
impl_id_fmt!(WalkerId, "walker");
impl_id_fmt!(InstrId, "instr");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_id_truncates_to_20_bits() {
        assert_eq!(InstrId::new(0x100001).raw(), 1);
        assert_eq!(InstrId::new(InstrId::MASK).raw(), InstrId::MASK);
    }

    #[test]
    fn allocator_wraps() {
        let mut a = InstrIdAllocator {
            next: InstrId::MASK,
        };
        assert_eq!(a.next_id().raw(), InstrId::MASK);
        assert_eq!(a.next_id().raw(), 0);
    }

    #[test]
    fn allocator_is_sequential() {
        let mut a = InstrId::allocator();
        let ids: Vec<u32> = (0..5).map(|_| a.next_id().raw()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(CuId(3).to_string(), "cu3");
        assert_eq!(WavefrontId(17).to_string(), "wf17");
        assert_eq!(InstrId::new(9).to_string(), "instr9");
    }
}
