//! Shared primitive types for the `ptw-sched` simulator workspace.
//!
//! This crate is the bottom of the dependency DAG. It defines the vocabulary
//! every other crate speaks:
//!
//! * [`addr`] — virtual/physical addresses, page and cache-line geometry;
//! * [`ids`] — newtyped identifiers for compute units, wavefronts, SIMD
//!   instructions, lanes and page-table walkers;
//! * [`time`] — the [`time::Cycle`] timestamp used by the
//!   discrete-event engine;
//! * [`rng`] — a small deterministic PRNG ([`rng::SplitMix64`]) so simulation
//!   results are bit-reproducible across platforms (we deliberately avoid
//!   pulling `rand` into the simulator core);
//! * [`stats`] — counters, online means and bucketed histograms used by the
//!   metrics pipeline.
//!
//! # Example
//!
//! ```
//! use ptw_types::addr::{VirtAddr, PAGE_SIZE};
//! use ptw_types::time::Cycle;
//!
//! let va = VirtAddr::new(0x7f00_1234_5678);
//! assert_eq!(va.page().base().raw() % PAGE_SIZE as u64, 0);
//! let t = Cycle::ZERO + 100;
//! assert_eq!(t.raw(), 100);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod ids;
pub mod rng;
pub mod stats;
pub mod time;

pub use addr::{PhysAddr, PhysFrame, VirtAddr, VirtPage, LINE_SIZE, PAGE_SIZE};
pub use ids::{CuId, InstrId, LaneId, WalkerId, WavefrontId};
pub use rng::SplitMix64;
pub use time::Cycle;
