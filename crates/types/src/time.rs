//! Simulation time.
//!
//! All components are clocked in **GPU cycles** (the paper's GPU runs at
//! 2 GHz; DRAM timings are pre-converted to GPU cycles in the memory model).
//! [`Cycle`] is a newtype over `u64` so a timestamp can never be confused
//! with a duration or an ordinary counter.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in GPU cycles since reset.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero (simulation reset).
    pub const ZERO: Cycle = Cycle(0);
    /// The maximum representable time; useful as an "infinity" sentinel when
    /// computing the minimum of next-event times.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a timestamp from a raw cycle count.
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: returns `self - other`, or 0 if `other` is
    /// later than `self`.
    pub const fn saturating_since(self, other: Cycle) -> u64 {
        self.0.saturating_sub(other.0)
    }

    /// Returns the later of two timestamps.
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two timestamps.
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    /// Elapsed cycles between two timestamps.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "negative cycle difference");
        self.0 - rhs.0
    }
}

impl fmt::Debug for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cycle({})", self.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub_round_trip() {
        let t = Cycle::new(10);
        assert_eq!((t + 5) - t, 5);
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(Cycle::new(3).saturating_since(Cycle::new(10)), 0);
        assert_eq!(Cycle::new(10).saturating_since(Cycle::new(3)), 7);
    }

    #[test]
    fn min_max() {
        let a = Cycle::new(1);
        let b = Cycle::new(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(Cycle::ZERO < Cycle::new(1));
        assert!(Cycle::new(1) < Cycle::MAX);
    }
}
