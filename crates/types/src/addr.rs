//! Virtual and physical address types and the page / cache-line geometry.
//!
//! The simulator models the prevalent x86-64 configuration the paper assumes:
//! 4 KiB base pages translated by a four-level radix page table, and 64 B
//! cache lines. Addresses are newtypes over `u64` so virtual and physical
//! addresses can never be mixed up ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// Size of a base page in bytes (4 KiB, x86-64 / ARM base page).
pub const PAGE_SIZE: usize = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Size of a large page in bytes (2 MiB, the x86-64 level-2 leaf size).
pub const LARGE_PAGE_SIZE: usize = 2 * 1024 * 1024;
/// log2 of [`LARGE_PAGE_SIZE`].
pub const LARGE_PAGE_SHIFT: u32 = 21;
/// Base pages per large page (512: one full leaf page table).
pub const PAGES_PER_LARGE_PAGE: u64 = 1 << (LARGE_PAGE_SHIFT - PAGE_SHIFT);
/// Size of a cache line in bytes (Table I: 64 B blocks).
pub const LINE_SIZE: usize = 64;
/// log2 of [`LINE_SIZE`].
pub const LINE_SHIFT: u32 = 6;

/// Translation granule of a mapping: a 4 KiB base page (level-1 leaf in
/// the x86-64 radix table) or a 2 MiB large page (level-2 leaf, one walk
/// level shorter).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PageSize {
    /// 4 KiB base page.
    #[default]
    Base4K,
    /// 2 MiB large page.
    Large2M,
}

impl PageSize {
    /// Size of the page in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            PageSize::Base4K => PAGE_SIZE,
            PageSize::Large2M => LARGE_PAGE_SIZE,
        }
    }

    /// log2 of [`bytes`](Self::bytes).
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Base4K => PAGE_SHIFT,
            PageSize::Large2M => LARGE_PAGE_SHIFT,
        }
    }

    /// The page-table level whose entry is the leaf for this size
    /// (1 for 4 KiB, 2 for 2 MiB).
    pub const fn leaf_level(self) -> u8 {
        match self {
            PageSize::Base4K => 1,
            PageSize::Large2M => 2,
        }
    }

    /// Whether this is the 2 MiB large size.
    pub const fn is_large(self) -> bool {
        matches!(self, PageSize::Large2M)
    }

    /// Short label used in report columns (`"4K"` / `"2M"`).
    pub const fn label(self) -> &'static str {
        match self {
            PageSize::Base4K => "4K",
            PageSize::Large2M => "2M",
        }
    }
}

/// A virtual address in the shared CPU/GPU virtual address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

/// A physical (DRAM) address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

/// A virtual page number (a [`VirtAddr`] shifted right by [`PAGE_SHIFT`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtPage(u64);

/// A physical frame number (a [`PhysAddr`] shifted right by [`PAGE_SHIFT`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysFrame(u64);

/// A physical cache-line address (a [`PhysAddr`] with the low
/// [`LINE_SHIFT`] bits cleared), the unit the data caches operate on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl VirtAddr {
    /// Creates a virtual address from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// Returns the raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the virtual page containing this address.
    pub const fn page(self) -> VirtPage {
        VirtPage(self.0 >> PAGE_SHIFT)
    }

    /// Returns the byte offset of this address within its page.
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE as u64 - 1)
    }

    /// Returns the byte offset of this address within its cache line.
    pub const fn line_offset(self) -> u64 {
        self.0 & (LINE_SIZE as u64 - 1)
    }
}

impl PhysAddr {
    /// Creates a physical address from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// Returns the raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the physical frame containing this address.
    pub const fn frame(self) -> PhysFrame {
        PhysFrame(self.0 >> PAGE_SHIFT)
    }

    /// Returns the cache line containing this address.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 & !(LINE_SIZE as u64 - 1))
    }

    /// Returns the byte offset of this address within its page.
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE as u64 - 1)
    }
}

impl VirtPage {
    /// Creates a virtual page number from a raw page index.
    pub const fn new(vpn: u64) -> Self {
        VirtPage(vpn)
    }

    /// Returns the raw page index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the first (lowest) virtual address inside this page.
    pub const fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }

    /// Returns the virtual address at `offset` bytes into this page.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `offset >= PAGE_SIZE`.
    pub fn addr_at(self, offset: u64) -> VirtAddr {
        debug_assert!(offset < PAGE_SIZE as u64, "offset {offset} out of page");
        VirtAddr((self.0 << PAGE_SHIFT) | offset)
    }

    /// Index into the page-table level `level` (4 = root PML4 … 1 = leaf PT)
    /// for this page, i.e. the 9-bit slice of the VPN that selects the entry.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `1..=4`.
    pub fn table_index(self, level: u8) -> usize {
        assert!(
            (1..=4).contains(&level),
            "page table level {level} out of range"
        );
        ((self.0 >> (9 * (level - 1) as u32)) & 0x1ff) as usize
    }

    /// The VPN truncated to the bits that select the page-table node at
    /// `level`; two pages sharing this prefix share the node of that level.
    ///
    /// For `level = 4` every address shares the single root, so the prefix is
    /// always 0. For `level = 1` this is the full VPN.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `1..=4`.
    pub fn prefix(self, level: u8) -> u64 {
        assert!(
            (1..=4).contains(&level),
            "page table level {level} out of range"
        );
        self.0 >> (9 * (level as u32 - 1))
    }

    /// The index of the 2 MiB region containing this page (the VPN with
    /// the low 9 bits dropped) — the key mixed-size TLBs and large-page
    /// maps use.
    pub const fn large_index(self) -> u64 {
        self.0 >> (LARGE_PAGE_SHIFT - PAGE_SHIFT)
    }

    /// This page's position within its 2 MiB region (`0..512`).
    pub const fn large_offset(self) -> u64 {
        self.0 & (PAGES_PER_LARGE_PAGE - 1)
    }

    /// Whether this page starts a 2 MiB-aligned region.
    pub const fn is_large_aligned(self) -> bool {
        self.large_offset() == 0
    }
}

impl PhysFrame {
    /// Creates a physical frame number from a raw frame index.
    pub const fn new(pfn: u64) -> Self {
        PhysFrame(pfn)
    }

    /// Returns the raw frame index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the first (lowest) physical address inside this frame.
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }

    /// Returns the physical address at `offset` bytes into this frame.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `offset >= PAGE_SIZE`.
    pub fn addr_at(self, offset: u64) -> PhysAddr {
        debug_assert!(offset < PAGE_SIZE as u64, "offset {offset} out of frame");
        PhysAddr((self.0 << PAGE_SHIFT) | offset)
    }
}

impl LineAddr {
    /// Creates a line address. The low [`LINE_SHIFT`] bits are cleared.
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw & !(LINE_SIZE as u64 - 1))
    }

    /// Returns the raw (aligned) address of the line.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns this line as a physical address.
    pub const fn addr(self) -> PhysAddr {
        PhysAddr(self.0)
    }
}

impl From<VirtPage> for VirtAddr {
    fn from(p: VirtPage) -> Self {
        p.base()
    }
}

impl From<PhysFrame> for PhysAddr {
    fn from(f: PhysFrame) -> Self {
        f.base()
    }
}

impl From<PhysAddr> for LineAddr {
    fn from(a: PhysAddr) -> Self {
        a.line()
    }
}

impl Add<u64> for VirtAddr {
    type Output = VirtAddr;
    fn add(self, rhs: u64) -> VirtAddr {
        VirtAddr(self.0 + rhs)
    }
}

impl AddAssign<u64> for VirtAddr {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<VirtAddr> for VirtAddr {
    type Output = u64;
    fn sub(self, rhs: VirtAddr) -> u64 {
        self.0 - rhs.0
    }
}

impl Add<u64> for PhysAddr {
    type Output = PhysAddr;
    fn add(self, rhs: u64) -> PhysAddr {
        PhysAddr(self.0 + rhs)
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VirtAddr({:#x})", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysAddr({:#x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Debug for VirtPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VirtPage({:#x})", self.0)
    }
}

impl fmt::Debug for PhysFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysFrame({:#x})", self.0)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_extraction_round_trips() {
        let va = VirtAddr::new(0x1234_5678);
        assert_eq!(va.page().raw(), 0x1234_5678 >> 12);
        assert_eq!(va.page_offset(), 0x678);
        assert_eq!(va.page().addr_at(va.page_offset()), va);
    }

    #[test]
    fn frame_base_is_aligned() {
        let f = PhysFrame::new(42);
        assert_eq!(f.base().raw(), 42 * 4096);
        assert_eq!(f.base().frame(), f);
    }

    #[test]
    fn line_masks_low_bits() {
        let a = PhysAddr::new(0x1003f);
        assert_eq!(a.line().raw(), 0x10000);
        let b = PhysAddr::new(0x10040);
        assert_ne!(a.line(), b.line());
    }

    #[test]
    fn table_index_slices_nine_bits() {
        // VPN = 0b1_000000001_000000010_000000011 spread over levels.
        let vpn = (1u64 << 27) | (1 << 18) | (2 << 9) | 3;
        let p = VirtPage::new(vpn);
        assert_eq!(p.table_index(4), 1);
        assert_eq!(p.table_index(3), 1);
        assert_eq!(p.table_index(2), 2);
        assert_eq!(p.table_index(1), 3);
    }

    #[test]
    fn prefix_identifies_shared_nodes() {
        // Two pages in the same 2 MiB region share the level-1 table (the
        // leaf PT node is selected by the level-2 prefix).
        let a = VirtPage::new(0x200);
        let b = VirtPage::new(0x2ff);
        assert_eq!(a.prefix(2), b.prefix(2));
        assert_ne!(a.prefix(1), b.prefix(1));
    }

    #[test]
    #[should_panic]
    fn table_index_rejects_level_zero() {
        VirtPage::new(0).table_index(0);
    }

    #[test]
    fn page_size_geometry() {
        assert_eq!(PageSize::Base4K.bytes(), PAGE_SIZE);
        assert_eq!(PageSize::Large2M.bytes(), LARGE_PAGE_SIZE);
        assert_eq!(PageSize::Large2M.bytes() / PageSize::Base4K.bytes(), 512);
        assert_eq!(PageSize::Base4K.leaf_level(), 1);
        assert_eq!(PageSize::Large2M.leaf_level(), 2);
        assert!(!PageSize::Base4K.is_large());
        assert!(PageSize::Large2M.is_large());
        assert_eq!(PageSize::default(), PageSize::Base4K);
        assert_eq!(PageSize::Large2M.label(), "2M");
    }

    #[test]
    fn large_index_matches_level_two_prefix() {
        // The 2 MiB region index is exactly the level-2 node prefix, so a
        // large-page leaf and its PWC path agree on the key.
        for vpn in [0u64, 0x1ff, 0x200, 0x12_3456] {
            let p = VirtPage::new(vpn);
            assert_eq!(p.large_index(), p.prefix(2));
            assert_eq!(p.large_offset(), vpn & 0x1ff);
            assert_eq!(p.is_large_aligned(), vpn % PAGES_PER_LARGE_PAGE == 0);
        }
    }

    #[test]
    fn arithmetic_behaves() {
        let va = VirtAddr::new(100);
        assert_eq!((va + 28).raw(), 128);
        assert_eq!((va + 28) - va, 28);
        let mut v = va;
        v += 4;
        assert_eq!(v.raw(), 104);
    }

    #[test]
    fn debug_formats_are_nonempty() {
        assert!(!format!("{:?}", VirtAddr::new(0)).is_empty());
        assert!(!format!("{:?}", PhysFrame::new(0)).is_empty());
        assert!(!format!("{:?}", LineAddr::new(0)).is_empty());
    }
}
