//! Lightweight statistics containers used by the metrics pipeline.
//!
//! These are deliberately simple: the experiment harness post-processes raw
//! counters into the paper's normalized figures, so all we need here are
//! counters, online means and bucketed histograms.

use core::fmt;

/// An incrementally updated arithmetic mean.
///
/// ```
/// use ptw_types::stats::OnlineMean;
/// let mut m = OnlineMean::new();
/// m.add(2.0);
/// m.add(4.0);
/// assert_eq!(m.mean(), 3.0);
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OnlineMean {
    count: u64,
    sum: f64,
}

impl OnlineMean {
    /// Creates an empty mean.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
    }

    /// Number of samples added so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean, or 0.0 if no samples have been added.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Merges another mean into this one.
    pub fn merge(&mut self, other: &OnlineMean) {
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A histogram over contiguous integer buckets defined by upper bounds.
///
/// Bucket `i` counts samples `x` with `edges[i-1] < x <= edges[i]`
/// (the first bucket counts `x <= edges[0]`); samples above the last edge go
/// into an implicit overflow bucket.
///
/// This mirrors Figure 3 of the paper, whose x-axis buckets are
/// `1-16, 17-32, 33-48, 49-64, 65-80, 81-256`.
///
/// ```
/// use ptw_types::stats::BucketHistogram;
/// let mut h = BucketHistogram::new(&[16, 32, 48, 64, 80, 256]);
/// h.add(10);
/// h.add(60);
/// h.add(300); // overflow
/// assert_eq!(h.counts(), &[1, 0, 0, 1, 0, 0]);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BucketHistogram {
    edges: Vec<u64>,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl BucketHistogram {
    /// Creates a histogram with the given strictly increasing upper edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly increasing.
    pub fn new(edges: &[u64]) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        BucketHistogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len()],
            overflow: 0,
            total: 0,
        }
    }

    /// The bucket edges this histogram was built with.
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Reassembles a histogram from previously serialized parts (the
    /// checkpoint deserializer's constructor). Returns `None` when the
    /// parts are inconsistent: bad edges, mismatched lengths, or a total
    /// that does not equal the counts plus overflow.
    pub fn from_parts(
        edges: Vec<u64>,
        counts: Vec<u64>,
        overflow: u64,
        total: u64,
    ) -> Option<Self> {
        if edges.is_empty()
            || !edges.windows(2).all(|w| w[0] < w[1])
            || counts.len() != edges.len()
            || counts.iter().sum::<u64>().checked_add(overflow) != Some(total)
        {
            return None;
        }
        Some(BucketHistogram {
            edges,
            counts,
            overflow,
            total,
        })
    }

    /// Adds a sample.
    pub fn add(&mut self, x: u64) {
        self.total += 1;
        match self.edges.iter().position(|&e| x <= e) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
    }

    /// Per-bucket counts (not including overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples that exceeded the last edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bucket fractions of the total (overflow excluded from buckets but
    /// included in the denominator). Returns zeros when empty.
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Merges another histogram with identical edges.
    ///
    /// # Panics
    ///
    /// Panics if the edges differ.
    pub fn merge(&mut self, other: &BucketHistogram) {
        assert_eq!(self.edges, other.edges, "merging incompatible histograms");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

impl fmt::Display for BucketHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut lo = 0u64;
        for (edge, count) in self.edges.iter().zip(&self.counts) {
            writeln!(f, "{:>6}-{:<6} {}", lo + 1, edge, count)?;
            lo = *edge;
        }
        write!(f, "{:>6}+{:<6} {}", lo + 1, "", self.overflow)
    }
}

/// A ratio of two counters, used for hit rates and similar metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HitRate {
    hits: u64,
    misses: u64,
}

impl HitRate {
    /// Creates an empty hit-rate counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a hit.
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss.
    pub fn miss(&mut self) {
        self.misses += 1;
    }

    /// Number of hits recorded.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses recorded.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `[0, 1]`, or 0.0 when no accesses were recorded.
    pub fn rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

/// Geometric mean of a sequence of positive values.
///
/// The paper reports speedups as geometric means ("30% on average
/// (geometric mean)"). Returns 0.0 for an empty slice.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_mean_basic() {
        let mut m = OnlineMean::new();
        assert_eq!(m.mean(), 0.0);
        m.add(1.0);
        m.add(2.0);
        m.add(3.0);
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn online_mean_merge() {
        let mut a = OnlineMean::new();
        a.add(1.0);
        let mut b = OnlineMean::new();
        b.add(3.0);
        a.merge(&b);
        assert_eq!(a.mean(), 2.0);
    }

    #[test]
    fn histogram_paper_buckets() {
        let mut h = BucketHistogram::new(&[16, 32, 48, 64, 80, 256]);
        h.add(1);
        h.add(16);
        h.add(17);
        h.add(64);
        h.add(65);
        h.add(256);
        assert_eq!(h.counts(), &[2, 1, 0, 1, 1, 1]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn histogram_fractions_sum_to_one_without_overflow() {
        let mut h = BucketHistogram::new(&[10, 20]);
        for x in [1, 5, 15, 20] {
            h.add(x);
        }
        let sum: f64 = h.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_unsorted_edges() {
        BucketHistogram::new(&[5, 5]);
    }

    #[test]
    fn histogram_merge() {
        let mut a = BucketHistogram::new(&[10]);
        let mut b = BucketHistogram::new(&[10]);
        a.add(1);
        b.add(100);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    fn hit_rate() {
        let mut h = HitRate::new();
        h.hit();
        h.hit();
        h.miss();
        assert!((h.rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn geometric_mean_matches_known_value() {
        let g = geometric_mean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn geometric_mean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }
}
