//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-reproducible: two runs with the same seed must
//! produce identical cycle counts on every platform, or the experiment
//! harness cannot compare schedulers meaningfully. We therefore use our own
//! tiny [SplitMix64] generator instead of an external crate whose stream
//! might change between versions.
//!
//! SplitMix64 passes BigCrush, has a full 2^64 period over its state
//! increments, and is the generator Vigna recommends for seeding; its
//! statistical quality is far beyond what workload-address generation and the
//! paper's *random* walk scheduler need.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

/// A SplitMix64 pseudo-random number generator.
///
/// ```
/// use ptw_types::rng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the result is
    /// unbiased for every bound.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire: https://arxiv.org/abs/1805.10941
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed `usize` index in `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Derives an independent generator for a subcomponent.
    ///
    /// Streams derived with different `tag`s are decorrelated even when the
    /// parent seed is reused, which lets each wavefront/workload own a
    /// private stream.
    pub fn fork(&mut self, tag: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // First three outputs for seed 1234567, cross-checked against the
        // reference C implementation.
        let mut r = SplitMix64::new(1234567);
        let out: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(out[0], 6457827717110365317);
        assert_eq!(out[1], 3203168211198807973);
        assert_eq!(out[2], 9817491932198370423);
    }

    #[test]
    fn next_below_is_in_range() {
        let mut r = SplitMix64::new(42);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_hits_every_small_value() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With 50 elements the identity permutation is astronomically
        // unlikely.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn forked_streams_differ() {
        let mut parent = SplitMix64::new(1);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.1));
    }
}
