//! Cross-crate integration of the translation path: page table + PWC +
//! IOMMU + memory controller assembled by hand (no GPU), mirroring the
//! "life of a GPU address translation request" walk-through in Section
//! II-B of the paper.

use ptw_core::iommu::{Iommu, IommuConfig, TranslationOutcome};
use ptw_core::sched::SchedulerKind;
use ptw_mem::controller::{MemSchedPolicy, MemSource, MemoryController};
use ptw_mem::dram::DramConfig;
use ptw_pagetable::frames::{FrameAllocator, FrameLayout};
use ptw_pagetable::table::PageTable;
use ptw_types::addr::VirtPage;
use ptw_types::ids::InstrId;
use ptw_types::time::Cycle;

struct Rig {
    alloc: FrameAllocator,
    table: PageTable,
    iommu: Iommu<u32>,
    mem: MemoryController,
}

impl Rig {
    fn new(scheduler: SchedulerKind) -> Self {
        let mut alloc = FrameAllocator::new(0x1000, 1 << 22, FrameLayout::Sequential);
        let table = PageTable::new(&mut alloc);
        Rig {
            alloc,
            table,
            iommu: Iommu::new(IommuConfig::paper_baseline().with_scheduler(scheduler)),
            mem: MemoryController::new(DramConfig::paper_baseline(), MemSchedPolicy::FrFcfs),
        }
    }

    fn map(&mut self, vpn: u64) -> VirtPage {
        let page = VirtPage::new(vpn);
        let frame = self.alloc.alloc();
        self.table.map(page, frame, &mut self.alloc).unwrap();
        page
    }

    /// Drives walkers + DRAM to quiescence; returns (waiter, completion
    /// cycle) pairs in completion order.
    fn drain(&mut self, start: Cycle) -> Vec<(u32, Cycle)> {
        let mut done = Vec::new();
        let mut outstanding: std::collections::HashMap<
            ptw_mem::MemReqId,
            ptw_types::ids::WalkerId,
        > = std::collections::HashMap::new();
        for read in self.iommu.start_walkers(&self.table, start) {
            let id = self
                .mem
                .submit(read.addr.line(), MemSource::PageWalk, read.issue_at);
            outstanding.insert(id, read.walker);
        }
        let mut guard = 0;
        let mut completions = Vec::new();
        while let Some(t) = self.mem.next_event_time() {
            guard += 1;
            assert!(guard < 1_000_000, "translation path did not quiesce");
            for c in self.mem.advance(t) {
                let walker = outstanding.remove(&c.id).expect("unknown mem completion");
                match self.iommu.memory_done_into(walker, c.at, &mut completions) {
                    Some(next) => {
                        let id = self.mem.submit(
                            next.addr.line(),
                            MemSource::PageWalk,
                            next.issue_at.max(c.at),
                        );
                        outstanding.insert(id, next.walker);
                    }
                    None => {
                        for ct in completions.drain(..) {
                            done.push((ct.waiter, ct.completed_at));
                        }
                        for read in self.iommu.start_walkers(&self.table, c.at) {
                            let id = self.mem.submit(
                                read.addr.line(),
                                MemSource::PageWalk,
                                read.issue_at.max(c.at),
                            );
                            outstanding.insert(id, read.walker);
                        }
                    }
                }
            }
        }
        done
    }
}

#[test]
fn single_translation_costs_four_dram_reads_cold() {
    let mut rig = Rig::new(SchedulerKind::Fcfs);
    let page = rig.map(0x7f_0000);
    let out = rig.iommu.translate(page, InstrId::new(1), 42, Cycle::ZERO);
    assert_eq!(out, TranslationOutcome::WalkPending);
    let done = rig.drain(Cycle::ZERO);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].0, 42);
    // Four serial DRAM reads: at least 4 × row-conflict-free latency.
    assert!(done[0].1.raw() >= 4 * 40, "completed unrealistically fast");
    assert_eq!(rig.mem.stats().walk_requests, 4);
}

#[test]
fn pwc_cuts_the_second_walk_to_one_read() {
    let mut rig = Rig::new(SchedulerKind::Fcfs);
    let a = rig.map(0x7f_0000);
    let b = rig.map(0x7f_0001); // same 2 MiB region → PWC covers 3 levels
    rig.iommu.translate(a, InstrId::new(1), 1, Cycle::ZERO);
    rig.drain(Cycle::ZERO);
    let reads_before = rig.mem.stats().walk_requests;
    rig.iommu
        .translate(b, InstrId::new(2), 2, Cycle::new(100_000));
    rig.drain(Cycle::new(100_000));
    assert_eq!(
        rig.mem.stats().walk_requests - reads_before,
        1,
        "warm PWC should leave only the leaf PTE read"
    );
}

#[test]
fn iommu_tlb_absorbs_repeat_translations_entirely() {
    let mut rig = Rig::new(SchedulerKind::Fcfs);
    let page = rig.map(0x12_3456);
    rig.iommu.translate(page, InstrId::new(1), 1, Cycle::ZERO);
    rig.drain(Cycle::ZERO);
    match rig
        .iommu
        .translate(page, InstrId::new(2), 2, Cycle::new(50_000))
    {
        TranslationOutcome::Hit { ready_at, .. } => {
            assert_eq!(ready_at.raw() - 50_000, 8, "L1 TLB hit latency");
        }
        other => panic!("expected IOMMU TLB hit, got {other:?}"),
    }
}

#[test]
fn eight_walkers_overlap_independent_walks() {
    let mut rig = Rig::new(SchedulerKind::Fcfs);
    // 8 pages in distinct regions: serial would cost 8 × 4 reads in a
    // chain; parallel walkers overlap them.
    let pages: Vec<VirtPage> = (0..8).map(|i| rig.map(0x100_0000 + i * 0x4_0000)).collect();
    for (i, &p) in pages.iter().enumerate() {
        rig.iommu
            .translate(p, InstrId::new(i as u32), i as u32, Cycle::ZERO);
    }
    let done = rig.drain(Cycle::ZERO);
    assert_eq!(done.len(), 8);
    let last = done.iter().map(|&(_, t)| t.raw()).max().unwrap();
    // Serial execution would take >= 32 sequential DRAM reads ≈ 32×40.
    assert!(
        last < 32 * 40,
        "walks did not overlap: finished at {last} cycles"
    );
}

#[test]
fn simt_aware_reorders_but_completes_the_same_set() {
    let mk = |sched| {
        let mut rig = Rig::new(sched);
        // One blocker to force buffering, then 12 requests from 3
        // instructions with different walk footprints.
        let blocker = rig.map(0xdead0);
        rig.iommu
            .translate(blocker, InstrId::new(9), 999, Cycle::ZERO);
        // Round-robin arrivals from 3 instructions with different walk
        // counts (2, 6, 10), like interleaved streams from different CUs.
        let counts = [2u64, 6, 10];
        let mut waiter = 0u32;
        for k in 0..10u64 {
            for (instr, &count) in counts.iter().enumerate() {
                if k < count {
                    let p = rig.map(0x200_0000 + instr as u64 * 0x40_0000 + k * 0x1_0000);
                    rig.iommu
                        .translate(p, InstrId::new(instr as u32), waiter, Cycle::new(1 + k));
                    waiter += 1;
                }
            }
        }
        let mut done: Vec<u32> = rig.drain(Cycle::ZERO).into_iter().map(|(w, _)| w).collect();
        done.retain(|&w| w != 999);
        done
    };
    let fcfs = mk(SchedulerKind::Fcfs);
    let simt = mk(SchedulerKind::SimtAware);
    assert_eq!(fcfs.len(), simt.len(), "a scheduler lost requests");
    let mut f = fcfs.clone();
    let mut s = simt.clone();
    f.sort_unstable();
    s.sort_unstable();
    assert_eq!(f, s, "completion sets differ");
    assert_ne!(fcfs, simt, "SIMT-aware should reorder service");
}
