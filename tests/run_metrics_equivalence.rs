//! Full-run metric equivalence test.
//!
//! The PR-1 golden trace (`policy_equivalence.rs`) pins the *scheduler's
//! selection order* in isolation. This test pins the *whole simulated
//! system*: every metric a figure can read — cycles, stalls, latencies,
//! histograms, TLB/cache hit rates, DRAM counters — for two contrasting
//! benchmarks under all seven scheduling policies. Any hot-path rework of
//! the event queue, IOMMU buffer, or inflight tracking must reproduce
//! these numbers bit-for-bit; only then is it a pure data-structure change.
//!
//! The one field deliberately *not* pinned is `RunResult::events`: the
//! number of queue pops is simulation cost, not simulated behavior, and
//! replacing polled `MemTick` events with next-completion-time scheduling
//! legitimately removes superseded ticks without touching any simulated
//! outcome.
//!
//! Floats are recorded via `f64::to_bits` so "equal" means bit-identical,
//! not approximately close.
//!
//! To re-bless after an *intentional* behavior change:
//!
//! ```text
//! PTW_BLESS=1 cargo test --test run_metrics_equivalence
//! ```

use std::fmt::Write as _;

use ptw_core::sched::SchedulerKind;
use ptw_sim::runner::{run_benchmark, RunSpec};
use ptw_sim::RunResult;
use ptw_workloads::{BenchmarkId, Scale};

const GOLDEN: &str = include_str!("golden/run_metrics.txt");

/// The two pinned benchmarks: one irregular graph workload with heavy
/// TLB-miss pressure (MVT) and one regular streaming workload (XSB), so
/// both the contended and the uncontended IOMMU paths are covered.
const BENCHES: [BenchmarkId; 2] = [BenchmarkId::Mvt, BenchmarkId::Xsb];

fn bits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Serializes every field of `RunResult` except `events` as stable
/// `key=value` pairs.
fn encode(r: &RunResult) -> String {
    let m = &r.metrics;
    let mut s = String::new();
    let kv_u = |s: &mut String, k: &str, v: u64| {
        let _ = write!(s, " {k}={v}");
    };
    let kv_f = |s: &mut String, k: &str, v: f64| {
        let _ = write!(s, " {k}={}", bits(v));
    };
    kv_u(&mut s, "cycles", m.cycles);
    kv_u(&mut s, "instructions", m.instructions);
    kv_u(&mut s, "cu_stall_cycles", m.cu_stall_cycles);
    kv_u(&mut s, "walk_requests", m.walk_requests);
    kv_u(&mut s, "walks_performed", m.walks_performed);
    let counts: Vec<String> = m.work_hist.counts().iter().map(|c| c.to_string()).collect();
    let _ = write!(
        s,
        " work_hist={}+{}/{}",
        counts.join(","),
        m.work_hist.overflow(),
        m.work_hist.total()
    );
    kv_f(&mut s, "interleaved_fraction", m.interleaved_fraction);
    kv_f(&mut s, "mean_first_latency", m.mean_first_latency);
    kv_f(&mut s, "mean_last_latency", m.mean_last_latency);
    kv_f(&mut s, "mean_latency_gap", m.mean_latency_gap);
    kv_f(&mut s, "mean_epoch_wavefronts", m.mean_epoch_wavefronts);
    kv_u(&mut s, "l2_tlb_accesses", m.l2_tlb_accesses);
    kv_u(&mut s, "instructions_with_walks", m.instructions_with_walks);
    kv_u(&mut s, "multi_walk_instructions", m.multi_walk_instructions);
    kv_u(&mut s, "iommu.walk_requests", r.iommu.walk_requests);
    kv_u(&mut s, "iommu.walks_performed", r.iommu.walks_performed);
    kv_u(
        &mut s,
        "iommu.merged_completions",
        r.iommu.merged_completions,
    );
    kv_u(
        &mut s,
        "iommu.total_walk_accesses",
        r.iommu.total_walk_accesses,
    );
    kv_u(&mut s, "iommu.peak_pending", r.iommu.peak_pending as u64);
    kv_u(
        &mut s,
        "iommu.total_walk_latency",
        r.iommu.total_walk_latency,
    );
    kv_u(
        &mut s,
        "iommu.completed_requests",
        r.iommu.completed_requests,
    );
    kv_u(&mut s, "mem.data_requests", r.mem.data_requests);
    kv_u(&mut s, "mem.walk_requests", r.mem.walk_requests);
    kv_u(&mut s, "mem.row_hits", r.mem.row_hits);
    kv_u(&mut s, "mem.row_conflicts", r.mem.row_conflicts);
    kv_u(&mut s, "mem.total_latency", r.mem.total_latency);
    kv_u(&mut s, "mem.completed", r.mem.completed);
    kv_f(&mut s, "gpu_l1_tlb_hit_rate", r.gpu_l1_tlb_hit_rate);
    kv_f(&mut s, "gpu_l2_tlb_hit_rate", r.gpu_l2_tlb_hit_rate);
    kv_f(&mut s, "l1_cache_hit_rate", r.l1_cache_hit_rate);
    kv_f(&mut s, "l2_cache_hit_rate", r.l2_cache_hit_rate);
    kv_f(&mut s, "finish_spread", r.finish_spread);
    s
}

fn full_trace() -> String {
    let mut out = String::new();
    for bench in BENCHES {
        for sched in SchedulerKind::EXTENDED {
            let spec = RunSpec::new(bench, sched, Scale::Small);
            let result = run_benchmark(&spec).expect("pinned run must succeed");
            writeln!(out, "{bench}/{}:{}", sched.label(), encode(&result)).expect("string write");
        }
    }
    out
}

#[test]
fn full_run_metrics_match_golden() {
    let got = full_trace();
    if std::env::var_os("PTW_BLESS").is_some() {
        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/run_metrics.txt");
        std::fs::write(&path, &got).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    for (g, e) in got.lines().zip(GOLDEN.lines()) {
        let name = g.split(':').next().unwrap_or("?");
        assert_eq!(g, e, "run {name} diverged from the golden metrics");
    }
    assert_eq!(
        got.lines().count(),
        GOLDEN.lines().count(),
        "run count changed; re-bless deliberately if intended"
    );
}

/// An *explicit* 1×1 all-4K topology is the same machine as the implicit
/// default: its metrics must match the golden file bit-for-bit, with no
/// re-blessing. This pins the multi-IOMMU refactor's equivalence claim —
/// sharding and page-size support ride entirely on config, and the
/// degenerate config reproduces the pre-refactor system exactly.
#[test]
fn explicit_default_topology_matches_golden() {
    for (bench, sched) in [
        (BenchmarkId::Mvt, SchedulerKind::SimtAware),
        (BenchmarkId::Xsb, SchedulerKind::Fcfs),
    ] {
        let mut spec = RunSpec::new(bench, sched, Scale::Small);
        spec.config = spec.config.with_topology(1, 1).with_large_page_permille(0);
        let result = run_benchmark(&spec).expect("pinned run must succeed");
        let line = format!("{bench}/{}:{}", sched.label(), encode(&result));
        assert!(
            GOLDEN.lines().any(|l| l == line),
            "explicit 1x1 all-4K topology diverged from golden for {bench}/{}",
            sched.label()
        );
    }
}

/// The golden file covers every policy for every pinned benchmark.
#[test]
fn golden_covers_every_cell() {
    for bench in BENCHES {
        for sched in SchedulerKind::EXTENDED {
            let prefix = format!("{bench}/{}:", sched.label());
            assert!(
                GOLDEN.lines().any(|l| l.starts_with(&prefix)),
                "no golden metrics for {prefix}"
            );
        }
    }
}
