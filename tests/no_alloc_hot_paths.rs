//! Proves the per-lookup hot paths are heap-allocation-free.
//!
//! A counting wrapper around the system allocator tallies every
//! `alloc`/`realloc`/`alloc_zeroed`; after warming each structure the test
//! asserts a zero allocation delta across:
//!
//! * TLB lookup (hit and miss) and fill (including an eviction),
//! * page-walk-cache `estimate`, `begin_walk` and `complete_walk`,
//! * MSHR `register` (allocate and merge) and `complete_into`,
//! * the coalescer's buffer-reusing `coalesce_split` form,
//! * a full IOMMU walk stepped through `memory_done_into` with a
//!   caller-owned completions buffer,
//! * every host-cache `prefetch` hint on the translate path (TLB sets,
//!   PWC sets, page-table map slots, IOMMU TLBs) — hints must stay pure
//!   address arithmetic, never heap work.
//!
//! Everything runs in a single `#[test]` so no concurrent test can disturb
//! the allocation counter between the before/after reads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ptw_core::iommu::{CompletedTranslation, Iommu, IommuConfig, MemRead, TranslationOutcome};
use ptw_gpu::coalesce_split;
use ptw_mem::{Mshr, MshrOutcome};
use ptw_pagetable::frames::{FrameAllocator, FrameLayout};
use ptw_pagetable::{PageTable, PageWalkCache, PwcConfig};
use ptw_tlb::{Tlb, TlbConfig};
use ptw_types::addr::{LineAddr, PhysFrame, VirtAddr, VirtPage};
use ptw_types::ids::InstrId;
use ptw_types::time::Cycle;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and asserts the allocator was never called inside it.
fn assert_no_alloc<T>(what: &str, f: impl FnOnce() -> T) -> T {
    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    let out = f();
    let delta = ALLOC_CALLS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta, 0,
        "{what}: {delta} heap allocation(s) on the hot path"
    );
    out
}

#[test]
fn hot_paths_do_not_allocate() {
    // --- TLB: storage is preallocated at construction. ---
    let mut tlb = Tlb::new(TlbConfig::paper_gpu_l2());
    let entries = tlb.config().entries as u64;
    for vpn in 0..entries {
        tlb.fill(VirtPage::new(vpn), PhysFrame::new(vpn + 0x1000));
    }
    assert_no_alloc("tlb lookup/fill", || {
        // The prefetch hint runs ahead of every lookup on the hot path.
        tlb.prefetch(VirtPage::new(3));
        assert!(tlb.lookup(VirtPage::new(3)).is_some());
        assert!(tlb.lookup(VirtPage::new(entries + 7)).is_none());
        // The TLB is full, so this fill must evict — still without heap work.
        let evicted = tlb.fill(VirtPage::new(entries + 7), PhysFrame::new(0x9999));
        assert!(evicted.is_some());
    });

    // --- Page walk cache: plans are fixed-size, arrays preallocated. ---
    let mut frames = FrameAllocator::new(0x100, 1 << 20, FrameLayout::Sequential);
    let mut table = PageTable::new(&mut frames);
    for vpn in 0..64u64 {
        // Spread pages across leaf tables so walks touch distinct paths.
        table
            .map(
                VirtPage::new(vpn << 9),
                PhysFrame::new(0x4000 + vpn),
                &mut frames,
            )
            .expect("fresh mapping");
    }
    let mut pwc = PageWalkCache::new(PwcConfig::paper_baseline());
    // Warm a few walks so complete_walk exercises both insert and update.
    for vpn in 0..8u64 {
        let plan = pwc
            .begin_walk(&table, VirtPage::new(vpn << 9))
            .expect("mapped page");
        pwc.complete_walk(&plan);
    }
    assert_no_alloc("pwc estimate/begin_walk/complete_walk", || {
        for vpn in 0..64u64 {
            let page = VirtPage::new(vpn << 9);
            // The walk-start path prefetches the PWC set lines and the
            // page table's map slots before probing either.
            pwc.prefetch(page);
            table.prefetch_translate(page);
            let _ = pwc.estimate(page);
            let plan = pwc.begin_walk(&table, page).expect("mapped page");
            assert!(plan.accesses() >= 1);
            pwc.complete_walk(&plan);
        }
    });

    // --- MSHR: slab entries and waiter buffers are recycled. ---
    let mut mshr: Mshr<(usize, u32)> = Mshr::new();
    let mut waiters: Vec<(usize, u32)> = Vec::with_capacity(16);
    let line_a = LineAddr::new(0x1000);
    let line_b = LineAddr::new(0x2000);
    // Warm: one full register/complete cycle leaves a spare waiter buffer
    // (capacity 4) and slack in the entry slab and output vector.
    for w in 0..4u32 {
        mshr.register(line_a, (0, w));
    }
    mshr.register(line_b, (1, 0));
    mshr.complete_into(line_a, &mut waiters);
    mshr.complete_into(line_b, &mut waiters);
    waiters.clear();
    assert_no_alloc("mshr register/complete_into", || {
        assert_eq!(mshr.register(line_a, (2, 0)), MshrOutcome::Allocated);
        assert_eq!(mshr.register(line_a, (2, 1)), MshrOutcome::Merged);
        mshr.complete_into(line_a, &mut waiters);
        assert_eq!(waiters.len(), 2);
        waiters.clear();
    });

    // --- Coalescer: the split form reuses the caller's buffers. ---
    let addrs: Vec<VirtAddr> = (0..64u64).map(|i| VirtAddr::new(i * 0x40)).collect();
    let mut pages = Vec::new();
    let mut lines = Vec::new();
    coalesce_split(&addrs, &mut pages, &mut lines);
    assert_no_alloc("coalesce_split with warmed buffers", || {
        coalesce_split(&addrs, &mut pages, &mut lines);
        assert_eq!(pages.len(), 1);
        assert_eq!(lines.len(), 64);
    });

    // --- IOMMU walk loop: memory_done_into appends into caller buffers. ---
    let mut iommu: Iommu<u32> = Iommu::new(IommuConfig::paper_baseline());
    let mut reads: Vec<MemRead> = Vec::with_capacity(8);
    let mut done: Vec<CompletedTranslation<u32>> = Vec::with_capacity(8);
    // Drives the single started walker's walk to completion.
    fn drive(
        iommu: &mut Iommu<u32>,
        reads: &mut Vec<MemRead>,
        done: &mut Vec<CompletedTranslation<u32>>,
    ) {
        let mut cur = reads.pop().expect("one started walker");
        while let Some(next) = iommu.memory_done_into(cur.walker, cur.issue_at, done) {
            cur = next;
        }
    }
    // Warm: one full walk sizes the walker slab and the completions buffer.
    // (Walks complete after their enqueue time, hence the forward clock.)
    let miss = iommu.translate(VirtPage::new(10 << 9), InstrId::new(0), 7, Cycle::ZERO);
    assert!(matches!(miss, TranslationOutcome::WalkPending));
    iommu.start_walkers_into(&table, Cycle::new(100), &mut reads);
    drive(&mut iommu, &mut reads, &mut done);
    assert_eq!(done.len(), 1);
    done.clear();
    // Measured: a second walk to a fresh page reuses every buffer.
    let miss = iommu.translate(VirtPage::new(11 << 9), InstrId::new(1), 8, Cycle::new(200));
    assert!(matches!(miss, TranslationOutcome::WalkPending));
    iommu.start_walkers_into(&table, Cycle::new(300), &mut reads);
    assert_no_alloc("iommu memory_done_into with warmed buffers", || {
        drive(&mut iommu, &mut reads, &mut done);
        assert_eq!(done.len(), 1);
        done.clear();
    });

    // --- Full completion fan-out: several same-page requests piggyback on
    // one walk and drain through the candidate index's page chain. ---
    // Warm: three same-page requests size the buffer slab (3 live slots),
    // the index's per-handle metadata and page map, and the completions
    // vector; the walk then exercises the whole chain drain once.
    let warm_page = VirtPage::new(12 << 9);
    for w in 0..3u32 {
        let out = iommu.translate(warm_page, InstrId::new(w % 2), 20 + w, Cycle::new(400));
        assert!(matches!(out, TranslationOutcome::WalkPending));
    }
    iommu.start_walkers_into(&table, Cycle::new(500), &mut reads);
    drive(&mut iommu, &mut reads, &mut done);
    assert_eq!(done.len(), 3);
    done.clear();
    // Measured: the same shape on a fresh page touches translate (buffer
    // push + index update), walker start (indexed selection + page-chain
    // blocking), and the multi-entry piggyback drain — zero allocations.
    // This shape is exactly what `System` packs into one fused
    // `TranslationDoneBatch` event: the walker's own completion plus its
    // piggybacked merges, all sharing a completion time.
    let hot_page = VirtPage::new(13 << 9);
    assert_no_alloc(
        "completion fan-out (translate, select, piggyback drain)",
        || {
            for w in 0..3u32 {
                // The dispatch loop issues this hint one event ahead of
                // each IOMMU arrival.
                iommu.prefetch_translate(hot_page);
                let out = iommu.translate(hot_page, InstrId::new(w % 2), 30 + w, Cycle::new(600));
                assert!(matches!(out, TranslationOutcome::WalkPending));
            }
            iommu.start_walkers_into(&table, Cycle::new(700), &mut reads);
            drive(&mut iommu, &mut reads, &mut done);
            assert_eq!(done.len(), 3, "one own walk + two piggybacks");
            assert_eq!(done.iter().filter(|c| !c.via_walk).count(), 2);
            done.clear();
        },
    );
}
