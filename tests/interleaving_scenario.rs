//! The paper's Figure 4 as an executable scenario: two SIMD loads whose
//! walk requests arrive interleaved at a single-walker IOMMU. Under FCFS
//! both loads crawl; with batching, one load's walks are serviced together
//! so it completes much earlier — without delaying the other load's last
//! walk.

use ptw_core::iommu::{Iommu, IommuConfig};
use ptw_core::sched::SchedulerKind;
use ptw_pagetable::frames::{FrameAllocator, FrameLayout};
use ptw_pagetable::table::PageTable;
use ptw_types::addr::VirtPage;
use ptw_types::ids::InstrId;
use ptw_types::time::Cycle;

const MEM_LATENCY: u64 = 100;

/// Runs the scenario; returns (A done, B done, service order string).
fn scenario(kind: SchedulerKind) -> (u64, u64, String) {
    let mut alloc = FrameAllocator::new(0x1000, 1 << 22, FrameLayout::Sequential);
    let mut table = PageTable::new(&mut alloc);
    let mut map = |vpn: u64| {
        let page = VirtPage::new(vpn);
        let f = alloc.alloc();
        table.map(page, f, &mut alloc).unwrap();
        page
    };
    let a_pages: Vec<VirtPage> = (0..3).map(|i| map(0x1_0000 + i * 0x200)).collect();
    let b_pages: Vec<VirtPage> = (0..5).map(|i| map(0x9_0000 + i * 0x200)).collect();

    let mut cfg = IommuConfig::paper_baseline().with_scheduler(kind);
    cfg.walkers = 1;
    let mut iommu: Iommu<char> = Iommu::new(cfg);

    let blocker = map(0x5_0000);
    iommu.translate(blocker, InstrId::new(9), '-', Cycle::ZERO);
    let mut reads = iommu.start_walkers(&table, Cycle::ZERO);

    // Figure 4a's IOMMU buffer: A0 B0 B1 A1 B2 A2 B3 B4.
    let arrivals = [
        ('A', a_pages[0]),
        ('B', b_pages[0]),
        ('B', b_pages[1]),
        ('A', a_pages[1]),
        ('B', b_pages[2]),
        ('A', a_pages[2]),
        ('B', b_pages[3]),
        ('B', b_pages[4]),
    ];
    for (i, &(who, page)) in arrivals.iter().enumerate() {
        let instr = InstrId::new(if who == 'A' { 0 } else { 1 });
        iommu.translate(page, instr, who, Cycle::new(1 + i as u64));
    }

    let (mut a_left, mut b_left) = (3u32, 5u32);
    let (mut a_done, mut b_done) = (0u64, 0u64);
    let mut order = String::new();
    let mut now = Cycle::ZERO;
    while a_left > 0 || b_left > 0 {
        let read = if reads.is_empty() {
            let mut r = iommu.start_walkers(&table, now);
            assert!(!r.is_empty(), "stuck with work pending");
            r.remove(0)
        } else {
            reads.remove(0)
        };
        let mut cur = read;
        let mut done = Vec::new();
        loop {
            now = cur.issue_at.max(now) + MEM_LATENCY;
            match iommu.memory_done_into(cur.walker, now, &mut done) {
                Some(next) => cur = next,
                None => {
                    for c in done.drain(..) {
                        match c.waiter {
                            'A' => {
                                a_left -= 1;
                                a_done = c.completed_at.raw();
                                order.push('A');
                            }
                            'B' => {
                                b_left -= 1;
                                b_done = c.completed_at.raw();
                                order.push('B');
                            }
                            _ => {}
                        }
                    }
                    break;
                }
            }
        }
    }
    (a_done, b_done, order)
}

#[test]
fn fcfs_interleaves_service_exactly_in_arrival_order() {
    let (_, _, order) = scenario(SchedulerKind::Fcfs);
    assert_eq!(order, "ABBABABB", "FCFS must follow the buffer order");
}

#[test]
fn batching_groups_each_instruction() {
    let (_, _, order) = scenario(SchedulerKind::SimtAware);
    // All of one instruction's walks must be contiguous in service order.
    let a_first = order.find('A').unwrap();
    let a_last = order.rfind('A').unwrap();
    let b_first = order.find('B').unwrap();
    let b_last = order.rfind('B').unwrap();
    assert!(
        a_last < b_first || b_last < a_first,
        "service order {order} interleaves the two instructions"
    );
}

#[test]
fn batching_completes_the_first_load_earlier_without_hurting_the_other() {
    let (a_fcfs, b_fcfs, _) = scenario(SchedulerKind::Fcfs);
    let (a_simt, b_simt, _) = scenario(SchedulerKind::SimtAware);
    // Figure 4b: "load A can potentially complete much earlier without
    // further delaying load B".
    assert!(
        a_simt.min(b_simt) < a_fcfs.min(b_fcfs),
        "first load not accelerated: {} vs {}",
        a_simt.min(b_simt),
        a_fcfs.min(b_fcfs)
    );
    assert!(
        a_simt.max(b_simt) <= a_fcfs.max(b_fcfs),
        "other load delayed: {} vs {}",
        a_simt.max(b_simt),
        a_fcfs.max(b_fcfs)
    );
}

#[test]
fn sjf_selects_the_shorter_job_first() {
    // With batching unavailable at the first pick (fresh scheduler), the
    // SIMT-aware policy should pick the instruction with the lower
    // accumulated score — A, which has 3 pending walks vs B's 5.
    let (a_done, b_done, order) = scenario(SchedulerKind::SimtAware);
    assert!(order.starts_with("AAA"), "service order {order}");
    assert!(a_done < b_done);
}
