//! Randomized differential oracle for the per-bank indexed DRAM
//! controller.
//!
//! Two [`MemoryController`]s with identical configuration — one on the
//! per-bank indexed `next_issue` path (the default), one forced onto the
//! legacy full-queue two-phase scan via `force_oracle(true)` — are driven
//! through thousands of identical operations: bursts of same-cycle
//! submits over a deliberately dense bank/row pool (so row hits, row
//! conflicts, and cross-bank arrival ties all occur constantly),
//! interleaved with partial and full time advances (so picks happen both
//! behind and ahead of the shared bus gate, exercising `next_issue_at`
//! displacement).
//!
//! After every operation the two controllers must agree on every
//! externally visible bit: the drained completions (order included), the
//! next event time, the outstanding count, and the full statistics block.
//! On top of the twin comparison, the indexed controller's own
//! `debug_next_issue` is checked against `debug_oracle_next_issue` on
//! **the same state** after every step, per channel — the direct
//! (time, index) bit-for-bit claim of DESIGN.md §13. Both scheduling
//! policies run under two seeds each.

use ptw_mem::controller::{MemSchedPolicy, MemSource, MemoryController};
use ptw_mem::dram::DramConfig;
use ptw_types::addr::LineAddr;
use ptw_types::rng::SplitMix64;
use ptw_types::time::Cycle;

const STEPS: usize = 3_000;

/// Paper-baseline address math: with 2 channels, 32 banks/channel, and
/// 2 KiB rows, consecutive 64-byte lines alternate channels, banks stride
/// by 128 bytes, and rows by `row_bytes × channels × banks_per_channel`.
fn line_for(cfg: &DramConfig, channel: u64, bank: u64, row: u64) -> LineAddr {
    let row_stride = cfg.row_bytes * (cfg.channels * cfg.banks_per_channel()) as u64;
    LineAddr::new(channel * 64 + bank * 128 + row * row_stride)
}

/// Asserts every externally visible bit of the two controllers matches,
/// and that the indexed controller's pick equals its own legacy-scan pick
/// per channel.
fn assert_in_lockstep(indexed: &mut MemoryController, oracle: &mut MemoryController, step: usize) {
    let channels = indexed.config().channels;
    for ch in 0..channels {
        assert_eq!(
            indexed.debug_next_issue(ch),
            indexed.debug_oracle_next_issue(ch),
            "step {step}: indexed pick diverged from the legacy scan on channel {ch}"
        );
        assert_eq!(
            indexed.debug_next_issue(ch),
            oracle.debug_oracle_next_issue(ch),
            "step {step}: twin controllers diverged on channel {ch}"
        );
    }
    assert_eq!(
        indexed.outstanding(),
        oracle.outstanding(),
        "step {step}: outstanding counts diverged"
    );
    assert_eq!(
        indexed.stats(),
        oracle.stats(),
        "step {step}: statistics diverged"
    );
    assert_eq!(
        indexed.next_event_time(),
        oracle.next_event_time(),
        "step {step}: next event times diverged"
    );
}

/// One churn run: `policy` under `seed`, indexed vs oracle in lockstep.
fn churn(policy: MemSchedPolicy, seed: u64) {
    let cfg = DramConfig::paper_baseline();
    let mut indexed = MemoryController::new(cfg.clone(), policy);
    let mut oracle = MemoryController::new(cfg.clone(), policy);
    oracle.force_oracle(true);

    let mut rng = SplitMix64::new(seed);
    let mut now = Cycle::ZERO;
    let mut done_a = Vec::new();
    let mut done_b = Vec::new();

    // A small pool keeps bank collisions and same-row reuse frequent: 6
    // banks × 3 rows across both channels.
    for step in 0..STEPS {
        match rng.next_u64() % 10 {
            // Burst of same-cycle submits: arrival ties within and across
            // banks, all behind whatever bus gate the last issue set.
            0..=4 => {
                let burst = 1 + (rng.next_u64() % 4);
                for _ in 0..burst {
                    let channel = rng.next_u64() % cfg.channels as u64;
                    let bank = rng.next_u64() % 6;
                    let row = rng.next_u64() % 3;
                    let line = line_for(&cfg, channel, bank, row);
                    let source = if rng.next_u64().is_multiple_of(2) {
                        MemSource::Data
                    } else {
                        MemSource::PageWalk
                    };
                    let ida = indexed.submit(line, source, now);
                    let idb = oracle.submit(line, source, now);
                    assert_eq!(ida, idb, "step {step}: request ids diverged");
                }
            }
            // Partial advance: a small step that usually lands between
            // issue and completion, so later submits arrive while the bus
            // gate is ahead of `now` (the displacement case).
            5..=7 => {
                now += 1 + rng.next_u64() % 25;
                done_a.clear();
                done_b.clear();
                indexed.advance_into(now, &mut done_a);
                oracle.advance_into(now, &mut done_b);
                assert_eq!(done_a, done_b, "step {step}: completions diverged");
            }
            // Full drain to the next event, when there is one.
            _ => {
                if let Some(t) = indexed.next_event_time() {
                    now = now.max(t);
                    done_a.clear();
                    done_b.clear();
                    indexed.advance_into(now, &mut done_a);
                    oracle.advance_into(now, &mut done_b);
                    assert_eq!(done_a, done_b, "step {step}: completions diverged");
                }
            }
        }
        assert_in_lockstep(&mut indexed, &mut oracle, step);
    }

    // Drain everything so end-of-run stats compare over completed work.
    while let Some(t) = indexed.next_event_time() {
        now = now.max(t);
        done_a.clear();
        done_b.clear();
        indexed.advance_into(now, &mut done_a);
        oracle.advance_into(now, &mut done_b);
        assert_eq!(done_a, done_b, "final drain: completions diverged");
    }
    assert_eq!(oracle.next_event_time(), None, "oracle twin not drained");
    assert_eq!(indexed.stats(), oracle.stats(), "final statistics diverged");
    assert!(
        indexed.stats().completed > 0,
        "churn must complete work for the comparison to mean anything"
    );
    assert!(
        indexed.stats().row_hits > 0 && indexed.stats().row_conflicts > 0,
        "pool must generate both row hits and conflicts"
    );
}

#[test]
fn indexed_controller_matches_oracle_under_churn() {
    for policy in [MemSchedPolicy::FrFcfs, MemSchedPolicy::Fcfs] {
        for seed in [0x5eed_0002u64, 0xdead_f00d] {
            churn(policy, seed);
        }
    }
}
