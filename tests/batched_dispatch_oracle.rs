//! Batched-dispatch differential oracle.
//!
//! `System::try_run` drains whole same-cycle calendar buckets and
//! dispatches them with fused submit runs, skipped stale `MemTick`s, and
//! hoisted watchdog/fault/budget checks. `System::try_run_unbatched` keeps
//! the pre-batching loop: one pop, one check block, one dispatch per
//! event. The two must be indistinguishable — this test runs **every**
//! (benchmark × extended policy) cell at small scale through both loops
//! and requires bit-identical [`RunResult`]s.
//!
//! `RunResult::PartialEq` is exact (f64 fields compare by value, and the
//! `events` count is included), so this pins not just the simulated
//! outcome but the queue-pop count: batching may not create or lose a
//! single event. The golden-metrics test guards the numbers across
//! history; this one guards the two loops against each other at every
//! cell, so a same-cycle ordering bug in the batcher cannot hide in a
//! benchmark the goldens don't cover.

use ptw_core::sched::SchedulerKind;
use ptw_sim::{RunResult, SimError, System, SystemConfig};
use ptw_workloads::{build, BenchmarkId, Scale};

fn run_both(
    bench: BenchmarkId,
    sched: SchedulerKind,
) -> (Result<RunResult, SimError>, Result<RunResult, SimError>) {
    let cfg = SystemConfig::paper_baseline().with_scheduler(sched);
    let batched = System::try_new(cfg.clone(), build(bench, Scale::Small, 0xC0FFEE))
        .expect("valid config")
        .try_run();
    let unbatched = System::try_new(cfg, build(bench, Scale::Small, 0xC0FFEE))
        .expect("valid config")
        .try_run_unbatched();
    (batched, unbatched)
}

#[test]
fn every_cell_is_bit_identical_across_loops() {
    for bench in BenchmarkId::ALL {
        for sched in SchedulerKind::EXTENDED {
            let (batched, unbatched) = run_both(bench, sched);
            let batched = batched.unwrap_or_else(|e| panic!("{bench}/{sched:?} batched: {e}"));
            let unbatched =
                unbatched.unwrap_or_else(|e| panic!("{bench}/{sched:?} unbatched: {e}"));
            assert_eq!(
                batched, unbatched,
                "batched and unbatched RunResult diverged for {bench}/{sched:?}"
            );
        }
    }
}

#[test]
fn budget_error_is_identical_across_loops() {
    // The hoisted slow path must report the exact same abort as the
    // per-event loop: same event count, same cycle.
    let mut cfg = SystemConfig::paper_baseline().with_scheduler(SchedulerKind::Fcfs);
    cfg.max_events = 1_000;
    let batched = System::try_new(cfg.clone(), build(BenchmarkId::Mvt, Scale::Small, 0xC0FFEE))
        .expect("valid config")
        .try_run();
    let unbatched = System::try_new(cfg, build(BenchmarkId::Mvt, Scale::Small, 0xC0FFEE))
        .expect("valid config")
        .try_run_unbatched();
    match (batched, unbatched) {
        (
            Err(SimError::EventBudgetExhausted {
                events: be,
                now: bn,
                ..
            }),
            Err(SimError::EventBudgetExhausted {
                events: ue,
                now: un,
                ..
            }),
        ) => {
            assert_eq!(be, ue, "abort event count diverged");
            assert_eq!(bn, un, "abort cycle diverged");
            assert_eq!(be, 1_001, "budget trips on the first event past it");
        }
        (b, u) => panic!("expected budget exhaustion from both loops, got {b:?} / {u:?}"),
    }
}
