//! Parallel execution must be an implementation detail: the sweep
//! executor fanning runs across threads has to produce results
//! bit-identical to a serial loop over the same specs, in the same order,
//! at any worker count.

use ptw_core::sched::SchedulerKind;
use ptw_sim::runner::{run_benchmark, ConfigVariant, Lab, RunSpec};
use ptw_sim::sweep::SweepExecutor;
use ptw_workloads::{BenchmarkId, Scale};

fn sweep_specs() -> Vec<RunSpec> {
    // A mixed bag: different benchmarks, schedulers, and seeds, so slow
    // and fast runs interleave and finish out of submission order.
    let mut specs = Vec::new();
    for id in [
        BenchmarkId::Kmn,
        BenchmarkId::Ssp,
        BenchmarkId::Atx,
        BenchmarkId::Mvt,
    ] {
        for kind in [
            SchedulerKind::Fcfs,
            SchedulerKind::SimtAware,
            SchedulerKind::Random,
        ] {
            let mut spec = RunSpec::new(id, kind, Scale::Small);
            spec.seed = 0x5EED ^ specs.len() as u64;
            specs.push(spec);
        }
    }
    specs
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let specs = sweep_specs();
    let serial: Vec<_> = specs
        .iter()
        .map(|s| run_benchmark(s).expect("clean spec"))
        .collect();
    for workers in [2, 4, 7] {
        let parallel = SweepExecutor::new(workers).run(&specs);
        assert_eq!(parallel.len(), serial.len());
        for ((spec, s), p) in specs.iter().zip(&serial).zip(&parallel) {
            // RunResult's PartialEq is exact, f64 fields included.
            assert_eq!(s, p, "divergence at {workers} workers for {spec:?}");
        }
    }
}

#[test]
fn prefetched_lab_matches_lazy_serial_lab() {
    let keys = [
        (
            BenchmarkId::Mvt,
            SchedulerKind::Fcfs,
            ConfigVariant::Baseline,
        ),
        (
            BenchmarkId::Mvt,
            SchedulerKind::SimtAware,
            ConfigVariant::Baseline,
        ),
        (
            BenchmarkId::Mvt,
            SchedulerKind::SimtAware,
            ConfigVariant::NoPinning,
        ),
        (
            BenchmarkId::Kmn,
            SchedulerKind::Fcfs,
            ConfigVariant::Baseline,
        ),
    ];
    let mut parallel = Lab::new(Scale::Small, 0xC0FFEE);
    assert_eq!(parallel.prefetch(&SweepExecutor::new(4), keys), keys.len());
    let mut lazy = Lab::new(Scale::Small, 0xC0FFEE);
    for (id, kind, variant) in keys {
        assert_eq!(
            parallel.result_with(id, kind, variant),
            lazy.result_with(id, kind, variant),
            "{id:?}/{kind:?}/{}",
            variant.label()
        );
    }
    // The prefetch covered everything: no further runs were executed.
    assert_eq!(parallel.executed, keys.len() as u64);
}

#[test]
fn executor_worker_count_does_not_leak_into_results() {
    // Same spec list through 1, 3, and 8 workers: the three result
    // vectors must be indistinguishable.
    let specs: Vec<RunSpec> = [SchedulerKind::Fcfs, SchedulerKind::SimtAware]
        .into_iter()
        .map(|k| RunSpec::new(BenchmarkId::Ssp, k, Scale::Small))
        .collect();
    let one = SweepExecutor::serial().run(&specs);
    let three = SweepExecutor::new(3).run(&specs);
    let eight = SweepExecutor::new(8).run(&specs);
    assert_eq!(one, three);
    assert_eq!(three, eight);
}
