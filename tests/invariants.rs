//! Property-based integration tests: system-level invariants that must
//! hold for any workload, seed or scheduler.

use proptest::prelude::*;
use ptw_core::sched::SchedulerKind;
use ptw_sim::config::SystemConfig;
use ptw_sim::system::System;
use ptw_workloads::{build, BenchmarkId, Scale};

/// A fast subset of benchmarks for property tests (full sims are a few
/// hundred milliseconds each; these are the cheapest three).
const FAST: [BenchmarkId; 3] = [BenchmarkId::Kmn, BenchmarkId::Ssp, BenchmarkId::Atx];

fn sched_strategy() -> impl Strategy<Value = SchedulerKind> {
    prop_oneof![
        Just(SchedulerKind::Fcfs),
        Just(SchedulerKind::Random),
        Just(SchedulerKind::SjfOnly),
        Just(SchedulerKind::BatchOnly),
        Just(SchedulerKind::SimtAware),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the scheduler and seed, a run completes with coherent
    /// accounting.
    #[test]
    fn run_invariants(
        bench_idx in 0usize..FAST.len(),
        sched in sched_strategy(),
        seed in 0u64..1000,
    ) {
        let id = FAST[bench_idx];
        let cfg = SystemConfig::paper_baseline().with_scheduler(sched);
        let r = System::new(cfg, build(id, Scale::Small, seed)).run();

        // Time and work happened.
        prop_assert!(r.metrics.cycles > 0);
        prop_assert!(r.metrics.instructions > 0);

        // Request conservation.
        prop_assert_eq!(r.iommu.completed_requests, r.iommu.walk_requests);
        prop_assert_eq!(
            r.iommu.walks_performed + r.iommu.merged_completions,
            r.iommu.walk_requests
        );

        // Each walk performs 1..=4 memory accesses.
        prop_assert!(r.iommu.total_walk_accesses >= r.iommu.walks_performed);
        prop_assert!(r.iommu.total_walk_accesses <= 4 * r.iommu.walks_performed);

        // Fractions and rates are proper fractions.
        prop_assert!((0.0..=1.0).contains(&r.metrics.interleaved_fraction));
        prop_assert!((0.0..=1.0).contains(&r.gpu_l1_tlb_hit_rate));
        prop_assert!((0.0..=1.0).contains(&r.gpu_l2_tlb_hit_rate));
        prop_assert!((0.0..=1.0).contains(&r.l2_cache_hit_rate));

        // Stalls cannot exceed total CU-cycles.
        prop_assert!(r.metrics.cu_stall_cycles <= 8 * r.metrics.cycles);

        // The Figure 3 histogram covers exactly the walk-generating
        // instructions.
        prop_assert_eq!(
            r.metrics.work_hist.total() + r.metrics.work_hist.overflow(),
            r.metrics.instructions_with_walks + r.metrics.work_hist.overflow()
        );
        prop_assert!(r.metrics.instructions_with_walks <= r.metrics.instructions);
        prop_assert!(r.metrics.multi_walk_instructions <= r.metrics.instructions_with_walks);

        // Last-completed can never beat first-completed.
        prop_assert!(r.metrics.mean_last_latency >= r.metrics.mean_first_latency);
    }

    /// The DRAM controller serves every submitted request exactly once.
    #[test]
    fn dram_conservation(
        lines in proptest::collection::vec(0u64..1u64 << 22, 1..200),
    ) {
        use ptw_mem::controller::{MemSchedPolicy, MemSource, MemoryController};
        use ptw_mem::dram::DramConfig;
        use ptw_types::addr::LineAddr;
        use ptw_types::time::Cycle;

        let mut mc = MemoryController::new(DramConfig::paper_baseline(), MemSchedPolicy::FrFcfs);
        let mut ids = std::collections::HashSet::new();
        for (i, &l) in lines.iter().enumerate() {
            ids.insert(mc.submit(LineAddr::new(l * 64), MemSource::Data, Cycle::new(i as u64)));
        }
        let mut served = std::collections::HashSet::new();
        let mut guard = 0;
        while let Some(t) = mc.next_event_time() {
            guard += 1;
            prop_assert!(guard < 100_000);
            for c in mc.advance(t) {
                prop_assert!(served.insert(c.id), "request served twice");
            }
        }
        prop_assert_eq!(served, ids);
    }
}
