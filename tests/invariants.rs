//! Randomized integration tests: system-level invariants that must hold
//! for any workload, seed or scheduler. Driven by the in-tree
//! [`SplitMix64`] so the suite is deterministic and needs no external
//! property-testing crate (the sandbox has no registry access).

use ptw_core::sched::SchedulerKind;
use ptw_sim::config::SystemConfig;
use ptw_sim::system::System;
use ptw_types::rng::SplitMix64;
use ptw_workloads::{build, BenchmarkId, Scale};

/// A fast subset of benchmarks for property tests (full sims are a few
/// hundred milliseconds each; these are the cheapest three).
const FAST: [BenchmarkId; 3] = [BenchmarkId::Kmn, BenchmarkId::Ssp, BenchmarkId::Atx];

/// Whatever the scheduler and seed, a run completes with coherent
/// accounting.
#[test]
fn run_invariants() {
    let mut rng = SplitMix64::new(0x117);
    for _ in 0..8 {
        let id = FAST[rng.index(FAST.len())];
        let sched = SchedulerKind::ALL[rng.index(SchedulerKind::ALL.len())];
        let seed = rng.next_below(1000);
        let cfg = SystemConfig::paper_baseline().with_scheduler(sched);
        let r = System::new(cfg, build(id, Scale::Small, seed)).run();

        // Time and work happened.
        assert!(r.metrics.cycles > 0);
        assert!(r.metrics.instructions > 0);

        // Request conservation.
        assert_eq!(r.iommu.completed_requests, r.iommu.walk_requests);
        assert_eq!(
            r.iommu.walks_performed + r.iommu.merged_completions,
            r.iommu.walk_requests
        );

        // Each walk performs 1..=4 memory accesses.
        assert!(r.iommu.total_walk_accesses >= r.iommu.walks_performed);
        assert!(r.iommu.total_walk_accesses <= 4 * r.iommu.walks_performed);

        // Fractions and rates are proper fractions.
        assert!((0.0..=1.0).contains(&r.metrics.interleaved_fraction));
        assert!((0.0..=1.0).contains(&r.gpu_l1_tlb_hit_rate));
        assert!((0.0..=1.0).contains(&r.gpu_l2_tlb_hit_rate));
        assert!((0.0..=1.0).contains(&r.l2_cache_hit_rate));

        // Stalls cannot exceed total CU-cycles.
        assert!(r.metrics.cu_stall_cycles <= 8 * r.metrics.cycles);

        // The Figure 3 histogram covers exactly the walk-generating
        // instructions.
        assert_eq!(
            r.metrics.work_hist.total() + r.metrics.work_hist.overflow(),
            r.metrics.instructions_with_walks + r.metrics.work_hist.overflow()
        );
        assert!(r.metrics.instructions_with_walks <= r.metrics.instructions);
        assert!(r.metrics.multi_walk_instructions <= r.metrics.instructions_with_walks);

        // Last-completed can never beat first-completed.
        assert!(r.metrics.mean_last_latency >= r.metrics.mean_first_latency);
    }
}

/// The DRAM controller serves every submitted request exactly once.
#[test]
fn dram_conservation() {
    use ptw_mem::controller::{MemSchedPolicy, MemSource, MemoryController};
    use ptw_mem::dram::DramConfig;
    use ptw_types::addr::LineAddr;
    use ptw_types::time::Cycle;

    let mut rng = SplitMix64::new(0xD4A);
    for _ in 0..16 {
        let lines: Vec<u64> = (0..(1 + rng.index(199)))
            .map(|_| rng.next_below(1 << 22))
            .collect();
        let mut mc = MemoryController::new(DramConfig::paper_baseline(), MemSchedPolicy::FrFcfs);
        let mut ids = std::collections::HashSet::new();
        for (i, &l) in lines.iter().enumerate() {
            ids.insert(mc.submit(LineAddr::new(l * 64), MemSource::Data, Cycle::new(i as u64)));
        }
        let mut served = std::collections::HashSet::new();
        let mut guard = 0;
        while let Some(t) = mc.next_event_time() {
            guard += 1;
            assert!(guard < 100_000);
            for c in mc.advance(t) {
                assert!(served.insert(c.id), "request served twice");
            }
        }
        assert_eq!(served, ids);
    }
}
