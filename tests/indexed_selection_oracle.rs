//! Randomized differential oracle for the incremental candidate index.
//!
//! Two IOMMUs with identical configuration — one using the incremental
//! [`CandidateIndex`] selection path (the default), one forced onto the
//! legacy one-pass window scan via `set_indexed_selection(false)` — are
//! driven through thousands of steps of identical churn: interleaved
//! translations over a 4K/2M page mix, walker kicks, and out-of-order
//! memory completions. After every operation the two must agree on every
//! externally visible bit: translation outcomes, the exact PTE reads each
//! walker kick issues, completion fan-out (order included), pending
//! counts, statistics counters, and diagnostic snapshots (which expose
//! per-entry aging bypass counters). The indexed IOMMU's internal
//! invariants are additionally recomputed from scratch at intervals via
//! `validate_candidate_index`.
//!
//! The configuration is deliberately hostile: a 12-entry lookahead window
//! so the buffer routinely outgrows it (exercising window pull-in on
//! removal), and an aging threshold of 40 so starvation preemption fires
//! constantly. All seven scheduling policies run under two seeds each.

use ptw_core::iommu::{CompletedTranslation, Iommu, IommuConfig, MemRead};
use ptw_core::sched::SchedulerKind;
use ptw_pagetable::frames::{FrameAllocator, FrameLayout};
use ptw_pagetable::table::PageTable;
use ptw_types::addr::{PageSize, VirtPage, PAGES_PER_LARGE_PAGE};
use ptw_types::ids::InstrId;
use ptw_types::rng::SplitMix64;
use ptw_types::time::Cycle;

const POLICIES: [SchedulerKind; 7] = [
    SchedulerKind::Fcfs,
    SchedulerKind::Random,
    SchedulerKind::SjfOnly,
    SchedulerKind::BatchOnly,
    SchedulerKind::SimtAware,
    SchedulerKind::HeaviestFirst,
    SchedulerKind::RoundRobin,
];

const STEPS: usize = 2_500;
const INSTRS: u64 = 6;

/// Builds one shared page table: 768 scattered 4 KiB pages (well past the
/// IOMMU L2 TLB's 256-entry reach, so walks keep coming) plus two 2 MiB
/// regions, and returns the pool of (page, size) pairs churn draws from.
fn build_pool() -> (PageTable, Vec<(VirtPage, PageSize)>) {
    let mut alloc = FrameAllocator::new(0x1000, 1 << 22, FrameLayout::Sequential);
    let mut table = PageTable::new(&mut alloc);
    let mut pool = Vec::new();
    for i in 0..768u64 {
        // Stride 3 crosses leaf-table boundaries at irregular offsets.
        let page = VirtPage::new(0x40_0000 + i * 3);
        let f = alloc.alloc();
        table.map(page, f, &mut alloc).expect("fresh 4K page");
        pool.push((page, PageSize::Base4K));
    }
    for r in 0..2u64 {
        let base = VirtPage::new(0x90_0000 + r * PAGES_PER_LARGE_PAGE);
        let run = alloc.alloc_contiguous(PAGES_PER_LARGE_PAGE);
        table
            .map_large(base, run, &mut alloc)
            .expect("fresh region");
        for j in 0..24u64 {
            pool.push((VirtPage::new(base.raw() + j * 21), PageSize::Large2M));
        }
    }
    (table, pool)
}

fn assert_same_completions(
    kind: SchedulerKind,
    step: usize,
    a: &[CompletedTranslation<u32>],
    b: &[CompletedTranslation<u32>],
) {
    assert_eq!(a.len(), b.len(), "{kind:?} step {step}: fan-out size");
    for (x, y) in a.iter().zip(b) {
        let same = x.page == y.page
            && x.frame == y.frame
            && x.instr == y.instr
            && x.enqueued_at == y.enqueued_at
            && x.completed_at == y.completed_at
            && x.via_walk == y.via_walk
            && x.walk_accesses == y.walk_accesses
            && x.service_seq == y.service_seq
            && x.large == y.large
            && x.waiter == y.waiter;
        assert!(
            same,
            "{kind:?} step {step}: completion diverged:\n  indexed: {x:?}\n  legacy:  {y:?}"
        );
    }
}

/// One churn run: `kind` under `seed`, indexed vs legacy in lockstep.
fn churn(kind: SchedulerKind, seed: u64) {
    let (table, pool) = build_pool();
    let mut cfg = IommuConfig::paper_baseline().with_scheduler(kind);
    cfg.buffer_entries = 12;
    cfg.aging_threshold = 40;
    // Two walkers against bursty arrivals: the buffer must back up past
    // the window or the selection policies never face a real choice.
    cfg.walkers = 2;
    let mut indexed: Iommu<u32> = Iommu::new(cfg);
    let mut legacy: Iommu<u32> = Iommu::new(cfg);
    legacy.set_indexed_selection(false);

    let mut rng = SplitMix64::new(seed);
    // Reads issued by *both* IOMMUs (asserted identical at issue time).
    let mut outstanding: Vec<MemRead> = Vec::new();
    let (mut reads_a, mut reads_b) = (Vec::new(), Vec::new());
    let (mut done_a, mut done_b): (Vec<CompletedTranslation<u32>>, _) = (Vec::new(), Vec::new());
    let mut now = 0u64;

    let complete_one = |i: usize,
                        outstanding: &mut Vec<MemRead>,
                        indexed: &mut Iommu<u32>,
                        legacy: &mut Iommu<u32>,
                        done_a: &mut Vec<CompletedTranslation<u32>>,
                        done_b: &mut Vec<CompletedTranslation<u32>>,
                        now: u64,
                        step: usize| {
        let read = outstanding.swap_remove(i);
        let at = Cycle::new(now.max(read.issue_at.raw()) + 40);
        done_a.clear();
        done_b.clear();
        let next_a = indexed.memory_done_into(read.walker, at, done_a);
        let next_b = legacy.memory_done_into(read.walker, at, done_b);
        assert_eq!(next_a, next_b, "{kind:?} step {step}: walker next read");
        assert_same_completions(kind, step, done_a, done_b);
        if let Some(next) = next_a {
            outstanding.push(next);
        }
    };

    for step in 0..STEPS {
        now += 1 + rng.next_below(3);
        match rng.next_below(10) {
            0..=4 => {
                // A burst of arrivals, wavefront-style: several pages on
                // behalf of a handful of instructions in one cycle.
                for burst in 0..=rng.next_below(5) {
                    let (page, size) = pool[rng.next_below(pool.len() as u64) as usize];
                    let instr = InstrId::new(rng.next_below(INSTRS) as u32);
                    let t = Cycle::new(now);
                    let waiter = (step * 8 + burst as usize) as u32;
                    let out_a = indexed.translate_sized(page, size, instr, waiter, t);
                    let out_b = legacy.translate_sized(page, size, instr, waiter, t);
                    assert_eq!(out_a, out_b, "{kind:?} step {step}: translate outcome");
                }
            }
            5..=8 => {
                for _ in 0..2 {
                    if outstanding.is_empty() {
                        break;
                    }
                    let i = rng.next_below(outstanding.len() as u64) as usize;
                    complete_one(
                        i,
                        &mut outstanding,
                        &mut indexed,
                        &mut legacy,
                        &mut done_a,
                        &mut done_b,
                        now,
                        step,
                    );
                }
            }
            _ => {
                // Burst drain: pull the queue down so the buffer cannot
                // grow without bound over a long run.
                for _ in 0..8 {
                    if outstanding.is_empty() {
                        break;
                    }
                    let i = rng.next_below(outstanding.len() as u64) as usize;
                    complete_one(
                        i,
                        &mut outstanding,
                        &mut indexed,
                        &mut legacy,
                        &mut done_a,
                        &mut done_b,
                        now,
                        step,
                    );
                }
            }
        }
        reads_a.clear();
        reads_b.clear();
        indexed.start_walkers_into(&table, Cycle::new(now), &mut reads_a);
        legacy.start_walkers_into(&table, Cycle::new(now), &mut reads_b);
        assert_eq!(reads_a, reads_b, "{kind:?} step {step}: issued reads");
        outstanding.extend(reads_a.iter().copied());
        assert_eq!(
            indexed.pending(),
            legacy.pending(),
            "{kind:?} step {step}: pending count"
        );
        if step % 127 == 0 {
            indexed.validate_candidate_index();
        }
        if step % 97 == 0 {
            assert_eq!(
                indexed.snapshot(),
                legacy.snapshot(),
                "{kind:?} step {step}: snapshot (incl. bypass counters)"
            );
            assert_eq!(
                indexed.stats(),
                legacy.stats(),
                "{kind:?} step {step}: stats"
            );
        }
    }

    // Drain to quiescence: every remaining walk must finish identically.
    let mut guard = 0;
    while !outstanding.is_empty() || indexed.pending() > 0 {
        guard += 1;
        assert!(guard < 200_000, "{kind:?}: drain did not quiesce");
        now += 5;
        if !outstanding.is_empty() {
            let i = rng.next_below(outstanding.len() as u64) as usize;
            complete_one(
                i,
                &mut outstanding,
                &mut indexed,
                &mut legacy,
                &mut done_a,
                &mut done_b,
                now,
                STEPS,
            );
        }
        reads_a.clear();
        reads_b.clear();
        indexed.start_walkers_into(&table, Cycle::new(now), &mut reads_a);
        legacy.start_walkers_into(&table, Cycle::new(now), &mut reads_b);
        assert_eq!(reads_a, reads_b, "{kind:?} drain: issued reads");
        outstanding.extend(reads_a.iter().copied());
    }
    indexed.validate_candidate_index();
    assert_eq!(
        indexed.snapshot(),
        legacy.snapshot(),
        "{kind:?}: final snapshot"
    );
    assert_eq!(indexed.stats(), legacy.stats(), "{kind:?}: final stats");
    assert_eq!(legacy.pending(), 0, "{kind:?}: legacy did not drain");

    // Coverage floor: the run must actually have visited the regimes the
    // oracle exists to compare, or a pool/latency tweak could silently
    // reduce this test to an idle-walker smoke test.
    let s = indexed.stats();
    assert!(
        s.walks_performed > 300,
        "{kind:?}: only {} walks",
        s.walks_performed
    );
    assert!(
        s.merged_completions > 0,
        "{kind:?}: piggybacking never fired"
    );
    assert!(s.large_walks_performed > 0, "{kind:?}: no 2 MiB walks");
    assert!(
        s.peak_pending > 12,
        "{kind:?}: buffer never outgrew the window (peak {})",
        s.peak_pending
    );
}

#[test]
fn indexed_selection_is_bit_identical_to_the_window_scan() {
    for kind in POLICIES {
        for seed in [0x5eed_0001u64, 0xfeed_beef] {
            churn(kind, seed);
        }
    }
}
