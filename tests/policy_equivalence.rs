//! Policy-equivalence regression test.
//!
//! The scheduler layer was refactored from a closed `match` on
//! [`SchedulerKind`] into the open `WalkPolicy` trait + registry. This
//! golden test pins the *selection behavior* across that refactor: each of
//! the seven policies is driven through a long, deterministic sequence of
//! walk-request windows (with churn, ineligibility, aging pressure, and
//! duplicate scores), and the sequence of chosen request `seq` numbers is
//! compared against a trace recorded with the pre-refactor enum `match`
//! implementation.
//!
//! To re-bless the golden file after an *intentional* behavior change:
//!
//! ```text
//! PTW_BLESS=1 cargo test --test policy_equivalence
//! ```

use std::fmt::Write as _;

use ptw_core::request::WalkRequest;
use ptw_core::sched::{Scheduler, SchedulerKind};
use ptw_types::addr::VirtPage;
use ptw_types::ids::InstrId;
use ptw_types::rng::SplitMix64;
use ptw_types::time::Cycle;

const GOLDEN: &str = include_str!("golden/policy_trace.txt");

fn req(seq: u64, instr: u32, score: u32) -> WalkRequest<()> {
    WalkRequest {
        page: VirtPage::new(seq),
        instr: InstrId::new(instr),
        seq,
        enqueued_at: Cycle::ZERO,
        own_estimate: 1,
        score,
        bypassed: 0,
        waiter: (),
    }
}

/// Drives `kind` through a deterministic request stream and returns the
/// comma-separated `seq` numbers it served, in order.
///
/// The stream is generated from a fixed [`SplitMix64`] seed shared by all
/// policies, so every policy sees byte-identical windows. Eligibility is
/// also drawn deterministically: roughly one request in five is
/// temporarily ineligible (modelling a same-page walk in flight). The
/// aging threshold is set low (24 bypasses) so the starvation-preemption
/// path is exercised inside the trace, not just in the common case.
fn trace(kind: SchedulerKind) -> String {
    let mut rng = SplitMix64::new(0x901DE4);
    let mut sched = Scheduler::new(kind, 24, 0xC0FFEE);
    let mut window: Vec<WalkRequest<()>> = Vec::new();
    let mut next_seq = 0u64;
    let mut picks = Vec::new();

    for step in 0..400 {
        // Keep the window topped up to 16 pending requests, drawn from a
        // small instruction set with clustered scores (ties matter).
        while window.len() < 16 {
            let instr = rng.next_below(5) as u32;
            let score = 1 + rng.next_below(8) as u32;
            window.push(req(next_seq, instr, score));
            next_seq += 1;
        }
        // Deterministic eligibility: ~20% of requests sit out this round.
        let mask: Vec<bool> = window.iter().map(|_| rng.next_below(5) != 0).collect();
        let before: Vec<u64> = window.iter().map(|r| r.seq).collect();
        match sched.select(&mut window, |r| {
            mask[before.iter().position(|&s| s == r.seq).expect("present")]
        }) {
            Some(i) => {
                picks.push(window[i].seq.to_string());
                window.remove(i);
            }
            None => picks.push("-".into()),
        }
        // Periodically drain a burst, so batching sees instructions run dry.
        if step % 37 == 0 {
            for _ in 0..window.len().min(6) {
                if let Some(i) = sched.select(&mut window, |_| true) {
                    picks.push(window[i].seq.to_string());
                    window.remove(i);
                }
            }
        }
    }
    picks.join(",")
}

fn full_trace() -> String {
    let mut out = String::new();
    for kind in SchedulerKind::EXTENDED {
        writeln!(out, "{}: {}", kind.label(), trace(kind)).expect("string write");
    }
    out
}

#[test]
fn policies_match_pre_refactor_golden_trace() {
    let got = full_trace();
    if std::env::var_os("PTW_BLESS").is_some() {
        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/policy_trace.txt");
        std::fs::write(&path, &got).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    for (g, e) in got.lines().zip(GOLDEN.lines()) {
        let name = g.split(':').next().unwrap_or("?");
        assert_eq!(g, e, "policy {name} diverged from the pre-refactor trace");
    }
    assert_eq!(
        got.lines().count(),
        GOLDEN.lines().count(),
        "policy count changed; re-bless deliberately if intended"
    );
}

/// The golden file covers every policy the façade exposes.
#[test]
fn golden_covers_every_policy() {
    for kind in SchedulerKind::EXTENDED {
        assert!(
            GOLDEN
                .lines()
                .any(|l| l.starts_with(&format!("{}:", kind.label()))),
            "no golden trace for {kind:?}"
        );
    }
}
