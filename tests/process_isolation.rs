//! Process-isolated sweep supervision end to end, against **real child
//! processes**: this test binary re-executes itself as the stdin/stdout
//! worker (`harness = false` so `main` can dispatch the `worker` argv),
//! exactly like `figures worker` / `ptw-bench worker`.
//!
//! Covered here:
//! * an all-healthy process-isolated sweep produces result rows identical
//!   to the thread-isolated sweep;
//! * an `abort@event` cell kills only its own worker — retried, then
//!   degraded to a FAILED row while every other cell completes;
//! * a `hang@event` cell trips the per-cell wall-clock timeout, is killed
//!   and reaped, and degrades the same way;
//! * budget escalation works across the process boundary: a cell that
//!   exhausts its event budget on attempts one and two succeeds on the
//!   third with a 16× budget (satellite to the thread-mode twin in
//!   `fault_tolerance.rs`);
//! * a supervisor that dies mid-sweep leaves a checkpoint — possibly with
//!   a torn trailing line — from which a resumed process-isolated sweep
//!   completes without recomputing the finished cells.

use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use ptw_core::sched::SchedulerKind;
use ptw_sim::config::FaultInjection;
use ptw_sim::error::RunError;
use ptw_sim::runner::{run_benchmark, ConfigVariant, Lab, RunSpec};
use ptw_sim::sweep::{CellExecutor, RetryPolicy, SweepExecutor};
use ptw_sim::Supervisor;
use ptw_workloads::{BenchmarkId, Scale};

fn main() {
    // The supervisor under test spawns this very binary with `worker` as
    // its first argument — same dispatch as the sweep binaries.
    if std::env::args().nth(1).as_deref() == Some("worker") {
        std::process::exit(i32::from(ptw_sim::supervisor::worker_main()));
    }

    let tests: &[(&str, fn())] = &[
        (
            "healthy_process_sweep_matches_thread_rows",
            healthy_process_sweep_matches_thread_rows,
        ),
        (
            "aborting_worker_degrades_only_its_cell",
            aborting_worker_degrades_only_its_cell,
        ),
        (
            "hung_worker_times_out_and_degrades",
            hung_worker_times_out_and_degrades,
        ),
        (
            "process_mode_budget_escalation_succeeds_on_attempt_three",
            process_mode_budget_escalation_succeeds_on_attempt_three,
        ),
        (
            "dead_supervisor_resumes_from_torn_checkpoint",
            dead_supervisor_resumes_from_torn_checkpoint,
        ),
    ];
    let mut failed = 0usize;
    for (name, test) in tests {
        match catch_unwind(AssertUnwindSafe(test)) {
            Ok(()) => eprintln!("test {name} ... ok"),
            Err(_) => {
                eprintln!("test {name} ... FAILED");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        eprintln!(
            "{failed} of {} process-isolation test(s) failed",
            tests.len()
        );
        std::process::exit(1);
    }
}

/// A supervisor whose workers are this test binary in `worker` mode.
fn supervisor(workers: usize) -> Supervisor {
    Supervisor::self_exec(&["worker"], workers).expect("own executable must be locatable")
}

/// The shared six-cell spec grid the sweep tests run over.
fn specs() -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for bench in [BenchmarkId::Kmn, BenchmarkId::Mvt, BenchmarkId::Atx] {
        for sched in [SchedulerKind::Fcfs, SchedulerKind::SimtAware] {
            specs.push(RunSpec::new(bench, sched, Scale::Small));
        }
    }
    specs
}

fn healthy_process_sweep_matches_thread_rows() {
    let specs = specs();
    let threads = SweepExecutor::new(3).try_run(&specs);
    let processes = supervisor(3).try_run_cells(&specs);
    assert_eq!(threads.cells.len(), processes.cells.len());
    for (t, p) in threads.cells.iter().zip(&processes.cells) {
        assert_eq!(t.index, p.index);
        assert_eq!(t.label, p.label);
        let t_result = t.result.as_ref().expect("thread cell healthy");
        let p_result = p.result.as_ref().expect("process cell healthy");
        assert_eq!(t_result, p_result, "{} diverged across the pipe", t.label);
    }
}

fn aborting_worker_degrades_only_its_cell() {
    let clean = specs();
    let victim = 2;
    let mut faulty = clean.clone();
    faulty[victim].config = faulty[victim]
        .config
        .clone()
        .with_fault(FaultInjection::abort_at(1_000));

    // Two attempts with minimal backoff: proves the dead worker is
    // respawned, and that a deterministic abort still degrades.
    let report = supervisor(3)
        .with_retry(RetryPolicy {
            max_attempts: 2,
            budget_factor: 1,
            backoff_ms: 1,
        })
        .try_run_cells(&faulty);

    assert_eq!(report.cells.len(), clean.len());
    let failed: Vec<_> = report.failed().collect();
    assert_eq!(failed.len(), 1, "{}", report.failure_summary());
    assert_eq!(failed[0].index, victim);
    assert_eq!(failed[0].attempts, 2, "the aborting cell was retried");
    match &failed[0].result {
        Err(RunError::WorkerDied { message }) => {
            assert!(
                message.contains("signal"),
                "abort should surface as a signal death: {message}"
            );
        }
        other => panic!("expected WorkerDied, got {other:?}"),
    }
    for (i, cell) in report.cells.iter().enumerate() {
        if i == victim {
            continue;
        }
        let result = cell.result.as_ref().expect("healthy cell completed");
        let expected = run_benchmark(&clean[i]).expect("clean serial run");
        assert_eq!(result, &expected, "cell {i} diverged");
    }
}

fn hung_worker_times_out_and_degrades() {
    let clean = specs();
    let victim = 1;
    let mut faulty = clean.clone();
    faulty[victim].config = faulty[victim]
        .config
        .clone()
        .with_fault(FaultInjection::hang_at(1_000));

    // 2 s: an order of magnitude above a debug-build small cell's
    // round-trip, an eternity below the forever-hang it must cut short.
    let started = Instant::now();
    let report = supervisor(3)
        .with_retry(RetryPolicy::none())
        .with_cell_timeout(Some(Duration::from_secs(2)))
        .try_run_cells(&faulty);
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "the hung worker must have been killed, not waited out"
    );

    let failed: Vec<_> = report.failed().collect();
    assert_eq!(failed.len(), 1, "{}", report.failure_summary());
    assert_eq!(failed[0].index, victim);
    match &failed[0].result {
        Err(RunError::WorkerTimeout { timeout_ms }) => assert_eq!(*timeout_ms, 2_000),
        other => panic!("expected WorkerTimeout, got {other:?}"),
    }
    for (i, cell) in report.cells.iter().enumerate() {
        if i == victim {
            continue;
        }
        assert!(cell.result.is_ok(), "cell {i} should have completed");
    }
}

fn process_mode_budget_escalation_succeeds_on_attempt_three() {
    let spec = RunSpec::new(BenchmarkId::Kmn, SchedulerKind::Fcfs, Scale::Small);
    let clean = run_benchmark(&spec).expect("clean run");
    assert!(clean.events >= 16, "need a nontrivial run to starve");

    // Fails at B and 4B, passes at 16B: attempts one and two exhaust the
    // budget *inside the worker*, travel back as typed budget errors, and
    // the supervisor-side retry escalates — identical to the thread path.
    let budget = clean.events / 8;
    let mut starved = spec;
    starved.config.max_events = budget;
    let report = supervisor(1)
        .with_retry(RetryPolicy {
            max_attempts: 3,
            budget_factor: 4,
            backoff_ms: 1,
        })
        .try_run_cells(std::slice::from_ref(&starved));

    let cell = &report.cells[0];
    let result = cell
        .result
        .as_ref()
        .expect("third attempt must fit the escalated budget");
    assert_eq!(cell.attempts, 3);
    assert_eq!(cell.budget_events, budget * 16);
    assert_eq!(result, &clean, "escalated run diverged from the clean run");
}

fn dead_supervisor_resumes_from_torn_checkpoint() {
    let path =
        std::env::temp_dir().join(format!("ptw-process-resume-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let keys = [
        (
            BenchmarkId::Kmn,
            SchedulerKind::Fcfs,
            ConfigVariant::Baseline,
        ),
        (
            BenchmarkId::Kmn,
            SchedulerKind::SimtAware,
            ConfigVariant::Baseline,
        ),
        (
            BenchmarkId::Mvt,
            SchedulerKind::Fcfs,
            ConfigVariant::Baseline,
        ),
        (
            BenchmarkId::Mvt,
            SchedulerKind::SimtAware,
            ConfigVariant::Baseline,
        ),
        (
            BenchmarkId::Atx,
            SchedulerKind::Fcfs,
            ConfigVariant::Baseline,
        ),
    ];

    // A supervisor that dies mid-sweep leaves the cells completed so far
    // (each appended durably as it arrived) plus, at worst, one torn
    // trailing line from an append cut off mid-write.
    let mut first = Lab::new(Scale::Small, 11);
    first.attach_checkpoint(&path).expect("create checkpoint");
    first.prefetch(&supervisor(2), keys[..3].iter().copied());
    assert_eq!(first.executed, 3);
    assert!(first.failures().is_empty());
    {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("reopen checkpoint");
        write!(file, "{{\"key\":\"KMN/FCFS/torn...").expect("write torn line");
    }

    // Resume: the three durable records load, the torn line is discarded,
    // and only the two missing cells run.
    let mut resumed = Lab::new(Scale::Small, 11);
    let loaded = resumed.attach_checkpoint(&path).expect("reopen checkpoint");
    assert_eq!(loaded, 3, "finished cells survive the crash");
    resumed.prefetch(&supervisor(2), keys);
    assert_eq!(resumed.executed, 2, "finished cells are not recomputed");
    assert!(resumed.failures().is_empty());

    // The resumed results are bit-identical to a from-scratch lab.
    let mut fresh = Lab::new(Scale::Small, 11);
    for (b, s, v) in keys {
        assert_eq!(
            fresh.result_with(b, s, v),
            resumed.result_with(b, s, v),
            "{b:?}/{s:?}"
        );
    }
    let _ = std::fs::remove_file(&path);
}
