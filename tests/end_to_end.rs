//! End-to-end integration tests: full-system simulations spanning every
//! crate in the workspace.

use ptw_core::sched::SchedulerKind;
use ptw_sim::config::SystemConfig;
use ptw_sim::system::{RunResult, System};
use ptw_workloads::{build, BenchmarkId, Scale};

fn run(id: BenchmarkId, sched: SchedulerKind, seed: u64) -> RunResult {
    let cfg = SystemConfig::paper_baseline().with_scheduler(sched);
    System::new(cfg, build(id, Scale::Small, seed)).run()
}

#[test]
fn every_benchmark_completes_under_every_scheduler() {
    for id in BenchmarkId::ALL {
        for sched in SchedulerKind::ALL {
            let r = run(id, sched, 1);
            assert!(r.metrics.cycles > 0, "{id}/{sched}: zero cycles");
            assert!(r.metrics.instructions > 0, "{id}/{sched}: no instructions");
        }
    }
}

#[test]
fn runs_are_bit_deterministic() {
    for sched in [
        SchedulerKind::Fcfs,
        SchedulerKind::Random,
        SchedulerKind::SimtAware,
    ] {
        let a = run(BenchmarkId::Gev, sched, 9);
        let b = run(BenchmarkId::Gev, sched, 9);
        assert_eq!(a.metrics.cycles, b.metrics.cycles, "{sched}: cycles differ");
        assert_eq!(a.metrics.walk_requests, b.metrics.walk_requests);
        assert_eq!(a.metrics.cu_stall_cycles, b.metrics.cu_stall_cycles);
        assert_eq!(a.events, b.events);
    }
}

#[test]
fn walk_accounting_is_conserved() {
    for id in [BenchmarkId::Mvt, BenchmarkId::Xsb, BenchmarkId::Ssp] {
        let r = run(id, SchedulerKind::SimtAware, 3);
        // Every enqueued walk request completes exactly once.
        assert_eq!(
            r.iommu.completed_requests, r.iommu.walk_requests,
            "{id}: requests lost or duplicated"
        );
        // Walks performed + piggybacked = all requests.
        assert_eq!(
            r.iommu.walks_performed + r.iommu.merged_completions,
            r.iommu.walk_requests,
            "{id}: merge accounting broken"
        );
        // Each performed walk does 1-4 memory accesses.
        assert!(r.iommu.total_walk_accesses >= r.iommu.walks_performed);
        assert!(r.iommu.total_walk_accesses <= 4 * r.iommu.walks_performed);
    }
}

#[test]
fn irregular_apps_are_translation_bound_and_regular_are_not() {
    let irregular = run(BenchmarkId::Mvt, SchedulerKind::Fcfs, 1);
    let regular = run(BenchmarkId::Kmn, SchedulerKind::Fcfs, 1);
    let walks_per_instr =
        |r: &RunResult| r.metrics.walk_requests as f64 / r.metrics.instructions as f64;
    assert!(
        walks_per_instr(&irregular) > 10.0 * walks_per_instr(&regular),
        "irregular {} vs regular {}",
        walks_per_instr(&irregular),
        walks_per_instr(&regular)
    );
}

#[test]
fn simt_aware_does_not_hurt_regular_applications() {
    // Paper, Figure 8: "the SIMT-aware scheduling does not hurt regular
    // workloads".
    for id in BenchmarkId::REGULAR {
        let fcfs = run(id, SchedulerKind::Fcfs, 2).metrics.cycles as f64;
        let simt = run(id, SchedulerKind::SimtAware, 2).metrics.cycles as f64;
        let speedup = fcfs / simt;
        assert!(
            (0.98..=1.05).contains(&speedup),
            "{id}: regular app perturbed by scheduler ({speedup:.3}x)"
        );
    }
}

#[test]
fn simt_aware_speeds_up_divergent_linear_algebra() {
    // The paper's headline: irregular apps gain from SIMT-aware walk
    // scheduling. We assert the direction on the three most stable
    // benchmarks (absolute magnitudes are substrate-dependent).
    for id in [BenchmarkId::Mvt, BenchmarkId::Bcg, BenchmarkId::Nw] {
        let fcfs = run(id, SchedulerKind::Fcfs, 1).metrics.cycles as f64;
        let simt = run(id, SchedulerKind::SimtAware, 1).metrics.cycles as f64;
        assert!(
            fcfs / simt > 1.05,
            "{id}: expected speedup, got {:.3}x",
            fcfs / simt
        );
    }
}

#[test]
fn stall_cycles_shrink_with_simt_aware_scheduling() {
    // Figure 9's mechanism: better forward progress = fewer CU stalls.
    let fcfs = run(BenchmarkId::Mvt, SchedulerKind::Fcfs, 1);
    let simt = run(BenchmarkId::Mvt, SchedulerKind::SimtAware, 1);
    assert!(
        simt.metrics.cu_stall_cycles < fcfs.metrics.cu_stall_cycles,
        "stalls: simt {} vs fcfs {}",
        simt.metrics.cu_stall_cycles,
        fcfs.metrics.cu_stall_cycles
    );
}

#[test]
fn walk_requests_shrink_with_simt_aware_scheduling() {
    // Figure 11's mechanism: deprioritizing translation-heavy instructions
    // keeps them from thrashing the TLBs.
    let fcfs = run(BenchmarkId::Mvt, SchedulerKind::Fcfs, 1);
    let simt = run(BenchmarkId::Mvt, SchedulerKind::SimtAware, 1);
    assert!(
        simt.metrics.walk_requests < fcfs.metrics.walk_requests,
        "walks: simt {} vs fcfs {}",
        simt.metrics.walk_requests,
        fcfs.metrics.walk_requests
    );
}

#[test]
fn latency_gap_shrinks_with_batching() {
    // Figure 10's mechanism: batching same-instruction walks narrows the
    // first-to-last completion gap.
    let fcfs = run(BenchmarkId::Mvt, SchedulerKind::Fcfs, 1);
    let simt = run(BenchmarkId::Mvt, SchedulerKind::SimtAware, 1);
    assert!(
        simt.metrics.mean_latency_gap < fcfs.metrics.mean_latency_gap,
        "gap: simt {} vs fcfs {}",
        simt.metrics.mean_latency_gap,
        fcfs.metrics.mean_latency_gap
    );
}

#[test]
fn epoch_wavefronts_shrink_with_simt_aware_scheduling() {
    // Figure 12's mechanism: fewer distinct wavefronts contend for the
    // GPU L2 TLB per epoch.
    let fcfs = run(BenchmarkId::Mvt, SchedulerKind::Fcfs, 1);
    let simt = run(BenchmarkId::Mvt, SchedulerKind::SimtAware, 1);
    assert!(
        simt.metrics.mean_epoch_wavefronts <= fcfs.metrics.mean_epoch_wavefronts,
        "epoch wavefronts: simt {} vs fcfs {}",
        simt.metrics.mean_epoch_wavefronts,
        fcfs.metrics.mean_epoch_wavefronts
    );
}

#[test]
fn bigger_iommu_buffer_does_not_reduce_simt_benefit() {
    // Figure 14's trend: more lookahead, more headroom for the scheduler.
    let speedup = |buffer: usize| {
        let cfg = SystemConfig::paper_baseline().with_iommu_buffer(buffer);
        let fcfs = System::new(
            cfg.clone().with_scheduler(SchedulerKind::Fcfs),
            build(BenchmarkId::Nw, Scale::Small, 1),
        )
        .run()
        .metrics
        .cycles as f64;
        let simt = System::new(
            cfg.with_scheduler(SchedulerKind::SimtAware),
            build(BenchmarkId::Nw, Scale::Small, 1),
        )
        .run()
        .metrics
        .cycles as f64;
        fcfs / simt
    };
    let small = speedup(64);
    let big = speedup(512);
    assert!(
        big >= small * 0.95,
        "lookahead should help: 64-entry {small:.3}x vs 512-entry {big:.3}x"
    );
}
