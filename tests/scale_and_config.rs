//! Integration tests for workload scales and configuration variants.

use ptw_core::sched::SchedulerKind;
use ptw_gpu::{coalesce, InstructionStream};
use ptw_sim::config::SystemConfig;
use ptw_sim::runner::{run_benchmark, ConfigVariant, RunSpec};
use ptw_sim::system::System;
use ptw_types::ids::WavefrontId;
use ptw_workloads::{build, BenchmarkId, Scale};

#[test]
fn scales_order_by_work() {
    // Larger scales issue strictly more instructions per wavefront.
    let per_wf = |scale| {
        let w = build(BenchmarkId::Mvt, scale, 1);
        w.expected_instructions() / w.wavefronts() as u64
    };
    let small = per_wf(Scale::Small);
    let medium = per_wf(Scale::Medium);
    let paper = per_wf(Scale::Paper);
    assert!(small < medium, "{small} vs {medium}");
    assert!(medium < paper, "{medium} vs {paper}");
}

#[test]
fn paper_scale_footprints_approach_table_two() {
    // At the Paper preset the generated footprints are within 2x of the
    // Table II values for the matrix benchmarks (the sized part of the
    // workload; vectors and guard pages account for the remainder).
    let w = build(BenchmarkId::Mvt, Scale::Paper, 1);
    let generated_mb = w.space().footprint_bytes() as f64 / (1024.0 * 1024.0);
    let paper = BenchmarkId::Mvt.paper_footprint_mb();
    assert!(
        generated_mb > paper * 0.5 && generated_mb < paper * 2.5,
        "MVT paper-scale footprint {generated_mb:.1} MB vs Table II {paper} MB"
    );
}

#[test]
fn divergence_matches_the_papers_range() {
    // Irregular kernels diverge to "1 to 32 or 64" pages per instruction
    // (Section I); never more than the wavefront width.
    for id in BenchmarkId::IRREGULAR {
        let mut w = build(id, Scale::Small, 4);
        for _ in 0..40 {
            if let Some(addrs) = w.next_instruction(WavefrontId(0)) {
                let d = coalesce(&addrs).page_divergence();
                assert!((1..=64).contains(&d), "{id}: divergence {d}");
            }
        }
    }
}

#[test]
fn every_config_variant_completes() {
    for variant in [
        ConfigVariant::Baseline,
        ConfigVariant::BigTlb,
        ConfigVariant::MoreWalkers,
        ConfigVariant::BigTlbMoreWalkers,
        ConfigVariant::SmallBuffer,
        ConfigVariant::BigBuffer,
        ConfigVariant::NoPinning,
        ConfigVariant::MemFcfs,
    ] {
        let spec = RunSpec {
            benchmark: BenchmarkId::Atx,
            scheduler: SchedulerKind::SimtAware,
            scale: Scale::Small,
            seed: 5,
            config: variant.config(),
        };
        let r = run_benchmark(&spec).expect("variant must run cleanly");
        assert!(r.metrics.cycles > 0, "{}: failed", variant.label());
    }
}

#[test]
fn more_walkers_reduce_walk_latency() {
    let run = |walkers| {
        let cfg = SystemConfig::paper_baseline().with_walkers(walkers);
        System::new(cfg, build(BenchmarkId::Mvt, Scale::Small, 1)).run()
    };
    let few = run(2);
    let many = run(16);
    assert!(
        many.iommu.avg_walk_latency() < few.iommu.avg_walk_latency(),
        "16 walkers {} vs 2 walkers {}",
        many.iommu.avg_walk_latency(),
        few.iommu.avg_walk_latency()
    );
    assert!(many.metrics.cycles < few.metrics.cycles);
}

#[test]
fn bigger_l2_tlb_reduces_walk_requests() {
    let run = |entries| {
        let cfg = SystemConfig::paper_baseline().with_gpu_l2_tlb_entries(entries);
        System::new(cfg, build(BenchmarkId::Mvt, Scale::Small, 1)).run()
    };
    let small = run(128);
    let big = run(2048);
    assert!(
        big.metrics.walk_requests < small.metrics.walk_requests,
        "2048-entry {} vs 128-entry {}",
        big.metrics.walk_requests,
        small.metrics.walk_requests
    );
}

#[test]
fn different_seeds_build_different_physical_layouts() {
    let a = build(BenchmarkId::Xsb, Scale::Small, 1);
    let b = build(BenchmarkId::Xsb, Scale::Small, 2);
    // Same virtual structure…
    assert_eq!(a.wavefronts(), b.wavefronts());
    assert_eq!(a.space().footprint_bytes(), b.space().footprint_bytes());
    // …and identical page tables structurally, but the gather streams
    // differ (seed-dependent), so runs differ.
    let cfg = SystemConfig::paper_baseline();
    let ra = System::new(cfg.clone(), a).run();
    let rb = System::new(cfg, b).run();
    assert_ne!(ra.metrics.cycles, rb.metrics.cycles);
}
