//! The fault-tolerant run layer end to end: config validation, typed
//! simulation aborts, panic isolation inside a sweep, the livelock
//! watchdog, and crash-safe checkpoint resume.

use ptw_core::sched::SchedulerKind;
use ptw_sim::config::{FaultInjection, WatchdogConfig};
use ptw_sim::error::{ConfigError, RunError, SimError};
use ptw_sim::runner::{run_benchmark, ConfigVariant, Lab, RunSpec};
use ptw_sim::sweep::{RetryPolicy, SweepExecutor};
use ptw_sim::{System, SystemConfig};
use ptw_workloads::{build, BenchmarkId, Scale};

#[test]
fn validate_rejects_each_degenerate_config() {
    let base = SystemConfig::paper_baseline();
    assert_eq!(base.validate(), Ok(()));

    let mut c = base.clone();
    c.iommu.walkers = 0;
    assert_eq!(c.validate(), Err(ConfigError::ZeroWalkers));

    let mut c = base.clone();
    c.iommu.buffer_entries = 0;
    assert_eq!(c.validate(), Err(ConfigError::ZeroBufferEntries));

    let mut c = base.clone();
    c.gpu.cus = 0;
    assert_eq!(c.validate(), Err(ConfigError::ZeroCus));

    // Ways not dividing entries.
    let mut c = base.clone();
    c.gpu_l2_tlb.entries = 12;
    c.gpu_l2_tlb.ways = 5;
    assert_eq!(
        c.validate(),
        Err(ConfigError::TlbGeometry {
            tlb: "gpu-l2",
            entries: 12,
            ways: 5,
        })
    );

    // Entries/ways divide but the set count (3) is not a power of two.
    let mut c = base.clone();
    c.iommu.l1_tlb.entries = 48;
    c.iommu.l1_tlb.ways = 16;
    assert!(matches!(
        c.validate(),
        Err(ConfigError::TlbGeometry {
            tlb: "iommu-l1",
            ..
        })
    ));

    let mut c = base.clone();
    c.epoch_accesses = 0;
    assert_eq!(
        c.validate(),
        Err(ConfigError::EpochAccessesOutOfRange { got: 0 })
    );

    let mut c = base.clone();
    c.watchdog = WatchdogConfig {
        check_events: 1_000,
        stall_epochs: 0,
    };
    assert_eq!(c.validate(), Err(ConfigError::WatchdogStallEpochsZero));

    // The same rejection surfaces from System construction and from the
    // run layer as a typed RunError, naming the problem.
    let mut bad = base.clone();
    bad.iommu.walkers = 0;
    let err = System::try_new(bad.clone(), build(BenchmarkId::Kmn, Scale::Small, 1))
        .expect_err("zero walkers must be rejected");
    assert_eq!(err, ConfigError::ZeroWalkers);
    let mut spec = RunSpec::new(BenchmarkId::Kmn, SchedulerKind::Fcfs, Scale::Small);
    spec.config = bad;
    match run_benchmark(&spec) {
        Err(RunError::Config(ConfigError::ZeroWalkers)) => {}
        other => panic!("expected a config error, got {other:?}"),
    }
}

#[test]
fn exhausted_budget_is_a_typed_error_with_snapshot() {
    let mut spec = RunSpec::new(BenchmarkId::Kmn, SchedulerKind::Fcfs, Scale::Small);
    spec.config.max_events = 1_000;
    match run_benchmark(&spec) {
        Err(RunError::Sim(SimError::EventBudgetExhausted {
            events, snapshot, ..
        })) => {
            assert_eq!(events, 1_001, "budget trips on the first event past it");
            // The diagnostic snapshot renders the scheduling state.
            let text = snapshot.to_string();
            assert!(text.contains("walker"), "{text}");
        }
        other => panic!("expected budget exhaustion, got {other:?}"),
    }
}

#[test]
fn watchdog_catches_injected_livelock() {
    let cfg = SystemConfig::paper_baseline()
        .with_watchdog(WatchdogConfig {
            check_events: 5_000,
            stall_epochs: 3,
        })
        .with_fault(FaultInjection::livelock_at(10_000));
    let sys = System::try_new(cfg, build(BenchmarkId::Kmn, Scale::Small, 1)).expect("valid");
    match sys.try_run() {
        Err(SimError::Livelock {
            events,
            stalled_epochs,
            snapshot,
            ..
        }) => {
            assert!(events > 10_000, "fired after the injection point: {events}");
            assert_eq!(stalled_epochs, 3);
            let text = snapshot.to_string();
            assert!(text.contains("pending"), "{text}");
        }
        other => panic!("expected a livelock diagnosis, got {other:?}"),
    }
}

/// The ISSUE acceptance scenario: an injected panic in one run of an
/// 8-spec sweep leaves the other seven results byte-identical to a clean
/// serial sweep and produces exactly one typed error naming the spec.
#[test]
fn injected_panic_isolates_one_cell_of_eight() {
    let mut specs = Vec::new();
    for id in [
        BenchmarkId::Kmn,
        BenchmarkId::Atx,
        BenchmarkId::Mvt,
        BenchmarkId::Ssp,
    ] {
        for kind in [SchedulerKind::Fcfs, SchedulerKind::SimtAware] {
            specs.push(RunSpec::new(id, kind, Scale::Small));
        }
    }
    let clean: Vec<_> = specs
        .iter()
        .map(|s| run_benchmark(s).expect("clean serial run"))
        .collect();

    let victim = 3;
    let mut faulty = specs.clone();
    faulty[victim].config = faulty[victim]
        .config
        .clone()
        .with_fault(FaultInjection::panic_at(1_000));
    let report = SweepExecutor::new(4)
        .with_retry(RetryPolicy::none())
        .try_run(&faulty);

    assert_eq!(report.cells.len(), 8);
    let failed: Vec<_> = report.failed().collect();
    assert_eq!(failed.len(), 1, "{}", report.failure_summary());
    assert_eq!(failed[0].index, victim);
    assert!(
        failed[0].label.contains(specs[victim].benchmark.abbrev()),
        "error names the spec: {}",
        failed[0].label
    );
    match &failed[0].result {
        Err(RunError::Panicked { message }) => {
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("expected a caught panic, got {other:?}"),
    }
    for (i, cell) in report.cells.iter().enumerate() {
        if i == victim {
            continue;
        }
        let r = cell.result.as_ref().expect("healthy cell");
        assert_eq!(r, &clean[i], "cell {i} diverged from the serial sweep");
    }
}

/// Thread-mode twin of the process-mode escalation test in
/// `process_isolation.rs`: a budget that exhausts on attempts one and two
/// (B, then 4B) succeeds on the third attempt at 16B, and the escalated
/// run is bit-identical to an unconstrained one.
#[test]
fn budget_escalation_succeeds_on_the_third_attempt() {
    let spec = RunSpec::new(BenchmarkId::Kmn, SchedulerKind::Fcfs, Scale::Small);
    let clean = run_benchmark(&spec).expect("clean run");
    assert!(clean.events >= 16, "need a nontrivial run to starve");

    let budget = clean.events / 8;
    let mut starved = spec;
    starved.config.max_events = budget;
    let report = SweepExecutor::serial()
        .with_retry(RetryPolicy {
            max_attempts: 3,
            budget_factor: 4,
            backoff_ms: 0,
        })
        .try_run(std::slice::from_ref(&starved));

    let cell = &report.cells[0];
    let result = cell
        .result
        .as_ref()
        .expect("third attempt must fit the escalated budget");
    assert_eq!(cell.attempts, 3);
    assert_eq!(cell.budget_events, budget * 16);
    assert_eq!(result, &clean, "escalated run diverged from the clean run");
}

#[test]
fn checkpoint_resume_reruns_only_the_failed_cell() {
    let path = std::env::temp_dir().join(format!("ptw-resume-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let keys = [
        (
            BenchmarkId::Kmn,
            SchedulerKind::Fcfs,
            ConfigVariant::Baseline,
        ),
        (
            BenchmarkId::Kmn,
            SchedulerKind::SimtAware,
            ConfigVariant::Baseline,
        ),
        (
            BenchmarkId::Mvt,
            SchedulerKind::Fcfs,
            ConfigVariant::Baseline,
        ),
        (
            BenchmarkId::Mvt,
            SchedulerKind::SimtAware,
            ConfigVariant::Baseline,
        ),
    ];

    // First sweep: one cell panics; the three completed results are
    // persisted to the checkpoint.
    let mut lab = Lab::new(Scale::Small, 7);
    lab.attach_checkpoint(&path).expect("create checkpoint");
    lab.set_fault(keys[0], FaultInjection::panic_at(500));
    lab.prefetch(&SweepExecutor::serial(), keys);
    assert_eq!(lab.executed, 4);
    assert_eq!(lab.failures().len(), 1);
    assert!(lab.failure_summary().contains("KMN"));

    // Rerun without the fault, resuming from the checkpoint: only the
    // failed cell executes again.
    let mut resumed = Lab::new(Scale::Small, 7);
    let loaded = resumed.attach_checkpoint(&path).expect("reopen checkpoint");
    assert_eq!(loaded, 3, "three clean results resumed");
    resumed.prefetch(&SweepExecutor::serial(), keys);
    assert_eq!(resumed.executed, 1, "only the failed cell re-ran");
    assert!(resumed.failures().is_empty());

    // The resumed results are bit-identical to a from-scratch lab.
    let mut fresh = Lab::new(Scale::Small, 7);
    for (b, s, v) in keys {
        assert_eq!(
            fresh.result_with(b, s, v),
            resumed.result_with(b, s, v),
            "{b:?}/{s:?}"
        );
    }
    let _ = std::fs::remove_file(&path);
}
