//! Randomized differential test of the bucketed [`EventQueue`].
//!
//! The production queue is a two-level calendar (near ring of one-cycle
//! buckets + far-horizon heap). This test drives it side by side with the
//! obviously-correct implementation it replaced — a plain
//! `BinaryHeap<(time, seq)>` — through 10⁵ mixed schedule/pop operations
//! drawn from a SplitMix64 stream, asserting identical pop sequences
//! (time *and* payload). The operation mix deliberately hits the hard
//! cases:
//!
//! * same-cycle bursts, so FIFO tie-breaking is exercised constantly;
//! * far-horizon events (beyond `HORIZON` cycles ahead), so spill,
//!   rebase, and migration interleave with direct near inserts;
//! * pop droughts that drain the ring completely, forcing rebases.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ptw_sim::engine::{EventQueue, HORIZON};
use ptw_types::rng::SplitMix64;
use ptw_types::time::Cycle;

/// The pre-overhaul implementation, kept verbatim as the oracle: a heap
/// ordered by `(time, insertion sequence)`.
#[derive(Default)]
struct HeapQueue {
    heap: BinaryHeap<Reverse<(Cycle, u64, u64)>>,
    next_seq: u64,
    now: Cycle,
}

impl HeapQueue {
    fn schedule(&mut self, at: Cycle, payload: u64) {
        assert!(at >= self.now, "oracle scheduled into the past");
        self.heap.push(Reverse((at, self.next_seq, payload)));
        self.next_seq += 1;
    }

    fn pop(&mut self) -> Option<(Cycle, u64)> {
        let Reverse((at, _, payload)) = self.heap.pop()?;
        self.now = at;
        Some((at, payload))
    }
}

#[test]
fn bucketed_queue_matches_binary_heap_oracle() {
    let mut rng = SplitMix64::new(0xD1FF_E4E7);
    let mut dut: EventQueue<u64> = EventQueue::new();
    let mut oracle = HeapQueue::default();
    let mut payload = 0u64;
    let mut pending = 0usize;

    for op in 0..100_000u32 {
        // Weighted op mix; occasional droughts drain the queue entirely.
        let drought = op % 9973 == 0;
        let schedule = !drought && pending < 4096 && (pending == 0 || rng.next_below(5) < 3);
        if schedule {
            let delta = match rng.next_below(100) {
                0..=39 => 0,                                // same-cycle burst
                40..=79 => rng.next_below(96),              // typical device latency
                80..=95 => rng.next_below(HORIZON - 1),     // anywhere in the ring
                _ => HORIZON + rng.next_below(3 * HORIZON), // far horizon
            };
            let at = Cycle::new(dut.now().raw() + delta);
            dut.schedule(at, payload);
            oracle.schedule(at, payload);
            payload += 1;
            pending += 1;
        } else {
            let drain = if drought { pending } else { 1 };
            for _ in 0..drain {
                let got = dut.pop();
                let want = oracle.pop();
                assert_eq!(got, want, "divergence at op {op}");
                pending -= 1;
            }
        }
    }

    // Final full drain must agree to the last event.
    loop {
        let got = dut.pop();
        let want = oracle.pop();
        assert_eq!(got, want, "divergence during final drain");
        if got.is_none() {
            break;
        }
    }
    assert_eq!(dut.len(), 0);
}

/// Same differential drive, but the DUT drains via [`EventQueue::
/// pop_bucket_into`] (the batched-dispatch entry point), interleaved with
/// single pops. Every drained bucket must reproduce, element for element,
/// the per-event pop sequence of the heap oracle — bucket draining is
/// pure mechanics, never ordering.
#[test]
fn bucket_drain_matches_binary_heap_oracle() {
    let mut rng = SplitMix64::new(0xB0CC_E7ED);
    let mut dut: EventQueue<u64> = EventQueue::new();
    let mut oracle = HeapQueue::default();
    let mut payload = 0u64;
    let mut pending = 0usize;
    let mut batch: Vec<u64> = Vec::new();

    for op in 0..100_000u32 {
        let schedule = pending < 4096 && (pending == 0 || rng.next_below(5) < 3);
        if schedule {
            let delta = match rng.next_below(100) {
                0..=39 => 0,
                40..=79 => rng.next_below(96),
                80..=95 => rng.next_below(HORIZON - 1),
                _ => HORIZON + rng.next_below(3 * HORIZON),
            };
            let at = Cycle::new(dut.now().raw() + delta);
            dut.schedule(at, payload);
            oracle.schedule(at, payload);
            payload += 1;
            pending += 1;
        } else if rng.next_below(4) == 0 {
            // Occasional single pop keeps the two drain styles interleaved.
            let got = dut.pop();
            let want = oracle.pop();
            assert_eq!(got, want, "single-pop divergence at op {op}");
            pending -= 1;
        } else {
            batch.clear();
            let at = dut.pop_bucket_into(&mut batch).expect("pending > 0");
            assert!(!batch.is_empty(), "a drained bucket is never empty");
            for &got in &batch {
                let (want_at, want) = oracle.pop().expect("oracle has pending events");
                assert_eq!(at, want_at, "bucket time divergence at op {op}");
                assert_eq!(got, want, "bucket payload divergence at op {op}");
            }
            assert_eq!(dut.now(), at, "queue clock follows the drained bucket");
            pending -= batch.len();
        }
    }

    // Final drain, all buckets.
    batch.clear();
    while let Some(at) = dut.pop_bucket_into(&mut batch) {
        for &got in &batch {
            let (want_at, want) = oracle.pop().expect("oracle drains in lockstep");
            assert_eq!((at, got), (want_at, want), "divergence during final drain");
        }
        batch.clear();
    }
    assert_eq!(oracle.pop(), None, "oracle must drain with the DUT");
    assert_eq!(dut.len(), 0);
}
