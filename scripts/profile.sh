#!/usr/bin/env bash
# Profile one benchmark x policy cell of the simulator.
#
# Usage: scripts/profile.sh [--scale small|medium|paper] [--policies LIST]
#                           [-- <extra ptw-bench args>]
#
# With `perf` installed this records a cycles profile of a single-cell
# sweep and prints the top of the report. Without it (containers, locked
# -down kernels) it degrades to coarse timing: the per-cell wall times
# ptw-bench already reports, which is enough to spot which cell regressed
# before reaching for a real profiler on another machine.
#
# Keep cells serial (--jobs 1): the profile of two cells fighting over
# one core's cache is not the profile of either.

set -euo pipefail
cd "$(dirname "$0")/.."

scale="medium"
policies="fcfs"
extra=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --scale)    scale="$2"; shift 2 ;;
    --policies) policies="$2"; shift 2 ;;
    --)         shift; extra=("$@"); break ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

cargo build --release -p ptw-bench 2>&1 | tail -1
bench=(./target/release/ptw-bench --scale "$scale" --policies "$policies"
       --reps 1 --jobs 1)
[[ ${#extra[@]} -gt 0 ]] && bench+=("${extra[@]}")

if command -v perf >/dev/null 2>&1 &&
   perf stat -e cycles true >/dev/null 2>&1; then
  echo "== perf record (cycles) of: ${bench[*]}"
  out="$(mktemp -d)/perf.data"
  perf record -o "$out" -g --call-graph dwarf -F 997 -- "${bench[@]}"
  perf report -i "$out" --stdio --percent-limit 1 | head -60
  echo "full profile: perf report -i $out"
else
  echo "== perf unavailable (no binary or no perf_event access); falling" \
       "back to per-cell wall times"
  "${bench[@]}"
  echo
  echo "For instruction-level attribution re-run on a machine with perf:"
  echo "  perf record -g --call-graph dwarf -- ${bench[*]}"
fi
