#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, tier-1 tests.
#
# Everything here runs without network access (the workspace has no
# third-party dependencies). The full workspace suite is `cargo test
# --workspace`; tier-1 (the gate) is the root package's integration tests.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test (tier-1)"
cargo test -q

echo "CI OK"
