#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, tier-1 tests.
#
# Everything here runs without network access (the workspace has no
# third-party dependencies). The full workspace suite is `cargo test
# --workspace`; tier-1 (the gate) is the root package's integration tests.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release (workspace, including bin targets)"
cargo build --release --workspace

echo "== cargo test (tier-1)"
cargo test -q

echo "== fault-injection smoke run (partial sweep must render and exit nonzero)"
smoke_out="$(mktemp)"
trap 'rm -f "$smoke_out"' EXIT
if ./target/release/figures fig2 --scale small --quiet \
    --inject-fault mvt:fcfs:panic@1000 >"$smoke_out" 2>&1; then
  echo "FAIL: figures exited zero despite an injected fault"
  cat "$smoke_out"
  exit 1
fi
grep -q "FAILED" "$smoke_out" || {
  echo "FAIL: degraded output does not mark the failed cell"
  cat "$smoke_out"
  exit 1
}
grep -q "Figure 2" "$smoke_out" || {
  echo "FAIL: partial sweep did not render the figure"
  cat "$smoke_out"
  exit 1
}

echo "== process-isolation smoke (abort@event worker must degrade to one FAILED cell)"
# A worker that dies to SIGABRT mid-cell must cost exactly its own cell:
# the supervisor respawns it, gives up after the retry budget, renders the
# figure with one degraded FAILED row, and exits nonzero.
proc_out="$(mktemp)"
trap 'rm -f "$smoke_out" "$proc_out"' EXIT
if ./target/release/figures fig2 --scale small --quiet --isolation process \
    --inject-fault mvt:fcfs:abort@1000 >"$proc_out" 2>&1; then
  echo "FAIL: figures exited zero despite an aborting worker"
  cat "$proc_out"
  exit 1
fi
grep -q "1 cell(s) FAILED" "$proc_out" || {
  echo "FAIL: the aborting worker did not degrade to exactly one FAILED cell"
  cat "$proc_out"
  exit 1
}
grep -q "Figure 2" "$proc_out" || {
  echo "FAIL: the process-isolated partial sweep did not render the figure"
  cat "$proc_out"
  exit 1
}
if ./target/release/figures fig2 --scale small --quiet --isolation process \
    --inject-fault mvt:fcfs:abort@1000 --fail-fast >/dev/null 2>&1; then
  echo "FAIL: --fail-fast exited zero despite an aborting worker"
  exit 1
fi

echo "== bench smoke (events/sec vs committed BENCH_10.json, >20% regress fails)"
# CI_BENCH_JOBS fans smoke cells across threads (0 = one per hardware
# thread). Default stays 1: parallel cells contend for cache/bandwidth and
# eat into the regression headroom, so only raise this where the smoke's
# wall time matters more than a tight floor. CI_BENCH_BUDGET_SECS is a
# hard wall-time ceiling — a hung or pathologically slow smoke fails CI
# instead of wedging it (exit 124 from timeout).
if [[ "${CI_SKIP_BENCH:-0}" == "1" ]]; then
  echo "skipped (CI_SKIP_BENCH=1)"
else
  timeout "${CI_BENCH_BUDGET_SECS:-300}" \
    ./target/release/ptw-bench --check BENCH_10.json \
    --jobs "${CI_BENCH_JOBS:-1}" --quiet
fi

echo "== topology smoke (2x2 IOMMU sharding with mixed 4K/2M pages)"
# End-to-end exercise of the multi-IOMMU path: a 2x2 shard topology with
# half the eligible 2 MiB regions promoted must actually perform large
# walks and must send traffic to every IOMMU.
topo_out="$(mktemp)"
trap 'rm -f "$smoke_out" "$proc_out" "$topo_out"' EXIT
./target/release/ptw-bench --scale small --reps 1 --policies fcfs \
  --topology 2x2 --large-page-frac 500 --quiet >"$topo_out" 2>&1
topo_line="$(grep 'topology-smoke:' "$topo_out")" || {
  echo "FAIL: no topology-smoke summary line"
  cat "$topo_out"
  exit 1
}
large_walks="$(sed -n 's/.*large_walks=\([0-9]*\).*/\1/p' <<<"$topo_line")"
min_iommu="$(sed -n 's/.*min_iommu_walks=\([0-9]*\).*/\1/p' <<<"$topo_line")"
if [[ -z "$large_walks" || "$large_walks" -eq 0 ]]; then
  echo "FAIL: mixed-page-size run performed no 2M walks: $topo_line"
  exit 1
fi
if [[ -z "$min_iommu" || "$min_iommu" -eq 0 ]]; then
  echo "FAIL: an IOMMU shard received no walks: $topo_line"
  exit 1
fi
echo "$topo_line"

echo "== dram scheduler smoke (indexed FR-FCFS selection vs legacy-scan oracle)"
# The per-bank indexed DRAM controller must produce exactly the row
# locality and queue occupancy the legacy full-queue scan produces.
# Run the same small cell twice — indexed (default) and with
# PTW_DRAM_ORACLE=1 — and assert the greppable dram-smoke lines match.
dram_a="$(mktemp)"
dram_b="$(mktemp)"
trap 'rm -f "$smoke_out" "$proc_out" "$topo_out" "$dram_a" "$dram_b"' EXIT
./target/release/ptw-bench --scale small --reps 1 --policies fcfs \
  --quiet >"$dram_a" 2>&1
PTW_DRAM_ORACLE=1 ./target/release/ptw-bench --scale small --reps 1 \
  --policies fcfs --quiet >"$dram_b" 2>&1
line_a="$(grep 'dram-smoke:' "$dram_a")" || {
  echo "FAIL: no dram-smoke summary line"
  cat "$dram_a"
  exit 1
}
line_b="$(grep 'dram-smoke:' "$dram_b")" || {
  echo "FAIL: no dram-smoke summary line under PTW_DRAM_ORACLE=1"
  cat "$dram_b"
  exit 1
}
if [[ "$line_a" != "$line_b" ]]; then
  echo "FAIL: indexed DRAM stats diverge from the legacy-scan oracle"
  echo "indexed: $line_a"
  echo "oracle:  $line_b"
  exit 1
fi
grep -q "row_hits=[1-9]" <<<"$line_a" || {
  echo "FAIL: dram smoke cell produced no row hits: $line_a"
  exit 1
}
echo "$line_a"

echo "== packed set-line smoke (packed AssocArray vs split-SoA differential oracle)"
# The packed LineBlock layout (DESIGN.md §14) must match the pre-packing
# split-SoA implementation bit for bit. The randomized differential
# oracle lives in ptw-mem's unit tests, which tier-1 (root integration
# tests only) does not run — so CI runs it explicitly.
cargo test -q -p ptw-mem differential

echo "== event-fusion smoke (fused walk events vs plain-event oracle)"
# Fused WalkerIssueBatch / TranslationDoneBatch events (DESIGN.md §14)
# must not change anything the simulation observes. Run the same small
# cell twice — fused (default) and with PTW_UNFUSED_EVENTS=1 — and
# assert the greppable dram-smoke lines match. (Do NOT compare the
# total/events lines: the event count legitimately drops under fusion.)
fuse_a="$(mktemp)"
fuse_b="$(mktemp)"
trap 'rm -f "$smoke_out" "$proc_out" "$topo_out" "$dram_a" "$dram_b" "$fuse_a" "$fuse_b"' EXIT
./target/release/ptw-bench --scale small --reps 1 --policies fcfs,simt-aware \
  --quiet >"$fuse_a" 2>&1
PTW_UNFUSED_EVENTS=1 ./target/release/ptw-bench --scale small --reps 1 \
  --policies fcfs,simt-aware --quiet >"$fuse_b" 2>&1
fline_a="$(grep 'dram-smoke:' "$fuse_a")" || {
  echo "FAIL: no dram-smoke summary line in fused run"
  cat "$fuse_a"
  exit 1
}
fline_b="$(grep 'dram-smoke:' "$fuse_b")" || {
  echo "FAIL: no dram-smoke summary line under PTW_UNFUSED_EVENTS=1"
  cat "$fuse_b"
  exit 1
}
if [[ "$fline_a" != "$fline_b" ]]; then
  echo "FAIL: fused event stream diverges from the plain-event oracle"
  echo "fused:   $fline_a"
  echo "unfused: $fline_b"
  exit 1
fi
echo "$fline_a"

echo "CI OK"
