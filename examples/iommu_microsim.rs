//! Drive the IOMMU directly — no GPU, no DRAM model — to watch the
//! SIMT-aware scheduler make its two decisions (batching, then
//! shortest-job-first) on a hand-built scenario. This is the paper's
//! Figure 4 example as runnable code.
//!
//! ```text
//! cargo run --release --example iommu_microsim
//! ```

use ptw_core::iommu::{Iommu, IommuConfig};
use ptw_core::sched::SchedulerKind;
use ptw_pagetable::frames::{FrameAllocator, FrameLayout};
use ptw_pagetable::table::PageTable;
use ptw_types::addr::VirtPage;
use ptw_types::ids::InstrId;
use ptw_types::time::Cycle;

const MEM_LATENCY: u64 = 100;

/// Runs the two-instruction scenario of Figure 4 under `kind`, returning
/// (load A completion, load B completion) in cycles.
fn scenario(kind: SchedulerKind) -> (u64, u64) {
    let mut alloc = FrameAllocator::new(0x1000, 1 << 22, FrameLayout::Sequential);
    let mut table = PageTable::new(&mut alloc);
    let mut map = |vpn: u64| -> VirtPage {
        let page = VirtPage::new(vpn);
        let frame = alloc.alloc();
        table.map(page, frame, &mut alloc).expect("fresh page");
        page
    };

    // load A needs 3 translations, load B needs 5 (as in Figure 4).
    let a: Vec<VirtPage> = (0..3).map(|i| map(0x1_0000 + i * 0x200)).collect();
    let b: Vec<VirtPage> = (0..5).map(|i| map(0x9_0000 + i * 0x200)).collect();

    let mut cfg = IommuConfig::paper_baseline().with_scheduler(kind);
    cfg.walkers = 1; // a single walker makes the service order visible
    let mut iommu: Iommu<char> = Iommu::new(cfg);

    // Occupy the walker so the arrivals below are *scheduled*, not started
    // immediately.
    let blocker = map(0x5_0000);
    iommu.translate(blocker, InstrId::new(99), '-', Cycle::ZERO);
    let mut pending_reads = iommu.start_walkers(&table, Cycle::ZERO);

    // Interleaved arrivals, exactly like the IOMMU buffer in Figure 4a:
    // A0 B0 B1 A1 B2 A2 B3 B4.
    let arrivals = [
        ('A', a[0]),
        ('B', b[0]),
        ('B', b[1]),
        ('A', a[1]),
        ('B', b[2]),
        ('A', a[2]),
        ('B', b[3]),
        ('B', b[4]),
    ];
    for (i, &(who, page)) in arrivals.iter().enumerate() {
        let instr = InstrId::new(if who == 'A' { 0 } else { 1 });
        iommu.translate(page, instr, who, Cycle::new(1 + i as u64));
    }

    let (mut a_left, mut b_left, mut a_done, mut b_done) = (3u32, 5u32, 0u64, 0u64);
    let mut now = Cycle::ZERO;
    println!("  service order under {}:", kind.label());
    while a_left > 0 || b_left > 0 {
        let read = if pending_reads.is_empty() {
            iommu.start_walkers(&table, now).remove(0)
        } else {
            pending_reads.remove(0)
        };
        let mut cur = read;
        let mut done = Vec::new();
        loop {
            now = cur.issue_at.max(now) + MEM_LATENCY;
            match iommu.memory_done_into(cur.walker, now, &mut done) {
                Some(next) => cur = next,
                None => {
                    for c in done.drain(..) {
                        match c.waiter {
                            'A' => {
                                a_left -= 1;
                                a_done = c.completed_at.raw();
                                print!("  A");
                            }
                            'B' => {
                                b_left -= 1;
                                b_done = c.completed_at.raw();
                                print!("  B");
                            }
                            _ => print!("  (warmup)"),
                        }
                    }
                    break;
                }
            }
        }
    }
    println!();
    (a_done, b_done)
}

fn main() {
    println!("Figure 4 scenario: loads A (3 walks) and B (5 walks), walks interleaved\n");
    let (a_fcfs, b_fcfs) = scenario(SchedulerKind::Fcfs);
    println!("  FCFS:       load A done @ {a_fcfs}, load B done @ {b_fcfs}\n");
    let (a_simt, b_simt) = scenario(SchedulerKind::SimtAware);
    println!("  SIMT-aware: load A done @ {a_simt}, load B done @ {b_simt}\n");
    let first_gain = a_fcfs.min(b_fcfs) as i64 - a_simt.min(b_simt) as i64;
    let last_cost = a_simt.max(b_simt) as i64 - a_fcfs.max(b_fcfs) as i64;
    println!(
        "Batching + SJF completes the first load {first_gain} cycles earlier, at a cost of \
         {} cycle(s) to the other\n(paper, Figure 4b: \"load A can potentially complete much \
         earlier without further delaying load B\").",
        last_cost.max(0)
    );
}
