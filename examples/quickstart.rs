//! Quickstart: simulate one irregular GPU benchmark under the baseline
//! FCFS page-walk scheduler and under the paper's SIMT-aware scheduler,
//! and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ptw_core::sched::SchedulerKind;
use ptw_sim::config::SystemConfig;
use ptw_sim::system::System;
use ptw_workloads::{build, BenchmarkId, Scale};

fn main() {
    let benchmark = BenchmarkId::Mvt;
    println!(
        "Simulating {} ({}) at Small scale...\n",
        benchmark.name(),
        benchmark.description()
    );

    let mut results = Vec::new();
    for scheduler in [SchedulerKind::Fcfs, SchedulerKind::SimtAware] {
        let cfg = SystemConfig::paper_baseline().with_scheduler(scheduler);
        let workload = build(benchmark, Scale::Small, 42);
        let result = System::new(cfg, workload).run();
        println!(
            "{:<11} {:>9} cycles | {:>6} walk requests | L2 TLB hit {:>5.1}% | \
             stall cycles {:>9}",
            scheduler.label(),
            result.metrics.cycles,
            result.metrics.walk_requests,
            result.gpu_l2_tlb_hit_rate * 100.0,
            result.metrics.cu_stall_cycles,
        );
        results.push(result);
    }

    let speedup = results[0].metrics.cycles as f64 / results[1].metrics.cycles as f64;
    println!(
        "\nSIMT-aware page walk scheduling speeds {} up by {:.2}x over FCFS",
        benchmark.abbrev(),
        speedup
    );
    println!("(the paper reports 30% on average across irregular workloads, up to 41%)");
}
