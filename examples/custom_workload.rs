//! Build a *custom* workload from the kernel primitives and run it.
//!
//! The twelve Table II benchmarks are compositions of a few access-pattern
//! kernels; this example composes a new one — a CSR SpMV-style kernel:
//! each lane walks its own sparse row (divergent but reused page set,
//! like the paper's linear-algebra benchmarks) interleaved with random
//! gathers into the dense vector — and measures how much SIMT-aware walk
//! scheduling helps it.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use ptw_core::sched::SchedulerKind;
use ptw_pagetable::frames::{FrameAllocator, FrameLayout};
use ptw_pagetable::space::AddressSpace;
use ptw_sim::config::SystemConfig;
use ptw_sim::system::System;
use ptw_workloads::{BenchmarkId, BufferRef, Kernel, Workload};

fn build_spmv(seed: u64) -> Workload {
    let mut alloc = FrameAllocator::with_memory_bytes(1 << 30, FrameLayout::Scrambled);
    let mut space = AddressSpace::new(&mut alloc);

    // A 4 MiB CSR values array (2x the GPU L2 TLB's 2 MiB reach) walked
    // row-per-lane, and a dense x-vector gathered by column index.
    let values = space.alloc_buffer("csr-values", 4 << 20, &mut alloc);
    let x = space.alloc_buffer("x-vector", 2 << 20, &mut alloc);
    let values = BufferRef {
        base: values.base,
        len: values.len,
    };
    let x = BufferRef {
        base: x.base,
        len: x.len,
    };

    let kernels = vec![Kernel::Interleaved {
        // Each lane walks its own row of nonzeros: 64 distinct pages per
        // instruction, the same pages reused across iterations.
        primary: Box::new(Kernel::Strided {
            buffer: values,
            rows: 1024,
            row_stride: 4096,
            elem: 8,
            iters: 64,
            skew: false,
        }),
        // Every 3rd instruction gathers x[col] at random column indices.
        secondary: Box::new(Kernel::Gather {
            buffer: x,
            elem: 8,
            iters: u64::MAX / 2,
            groups: 16,
            seed,
        }),
        period: 3,
    }];

    // Label it as MVT-like for reporting: a divergent linear-algebra
    // kernel.
    Workload::new(BenchmarkId::Mvt, space, kernels, 16)
}

fn main() {
    println!("Custom workload: CSR SpMV (4 MiB values, row-per-lane + x gathers)\n");
    let mut fcfs_cycles = 0;
    for scheduler in [SchedulerKind::Fcfs, SchedulerKind::SimtAware] {
        let cfg = SystemConfig::paper_baseline().with_scheduler(scheduler);
        let result = System::new(cfg, build_spmv(99)).run();
        println!(
            "{:<11} {:>9} cycles | {:>6} walks | interleaved walks {:>5.1}% | \
             mean walk latency {:>6.0} cycles",
            scheduler.label(),
            result.metrics.cycles,
            result.metrics.walk_requests,
            result.metrics.interleaved_fraction * 100.0,
            result.iommu.avg_walk_latency(),
        );
        if scheduler == SchedulerKind::Fcfs {
            fcfs_cycles = result.metrics.cycles;
        } else {
            println!(
                "\nSIMT-aware speedup on the custom kernel: {:.2}x",
                fcfs_cycles as f64 / result.metrics.cycles as f64
            );
        }
    }
}
