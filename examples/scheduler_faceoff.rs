//! Scheduler face-off: run every page-walk scheduling policy on a chosen
//! benchmark and compare performance, stall cycles, and translation
//! traffic side by side.
//!
//! ```text
//! cargo run --release --example scheduler_faceoff           # default GEV
//! cargo run --release --example scheduler_faceoff -- XSB    # pick a bench
//! ```

use ptw_core::sched::SchedulerKind;
use ptw_sim::config::SystemConfig;
use ptw_sim::system::System;
use ptw_workloads::{build, BenchmarkId, Scale};

fn main() {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "GEV".to_owned());
    let benchmark = BenchmarkId::ALL
        .into_iter()
        .find(|b| b.abbrev().eq_ignore_ascii_case(&wanted))
        .unwrap_or_else(|| {
            eprintln!(
                "unknown benchmark {wanted:?}; pick one of: {}",
                BenchmarkId::ALL.map(|b| b.abbrev()).join(" ")
            );
            std::process::exit(1);
        });

    println!(
        "Scheduler face-off on {} — {}\n",
        benchmark.name(),
        benchmark.description()
    );
    println!(
        "{:<11} {:>10} {:>9} {:>8} {:>8} {:>9} {:>10}",
        "scheduler", "cycles", "speedup", "walks", "merged", "stall-cy", "walk-lat"
    );

    let mut baseline_cycles = None;
    for scheduler in SchedulerKind::ALL {
        let cfg = SystemConfig::paper_baseline().with_scheduler(scheduler);
        let workload = build(benchmark, Scale::Small, 7);
        let r = System::new(cfg, workload).run();
        let base = *baseline_cycles.get_or_insert(r.metrics.cycles as f64);
        println!(
            "{:<11} {:>10} {:>8.2}x {:>8} {:>8} {:>9} {:>9.0}c",
            scheduler.label(),
            r.metrics.cycles,
            base / r.metrics.cycles as f64,
            r.metrics.walk_requests,
            r.iommu.merged_completions,
            r.metrics.cu_stall_cycles,
            r.iommu.avg_walk_latency(),
        );
    }
    println!(
        "\n(speedups are relative to {}, the first row)",
        SchedulerKind::ALL[0].label()
    );
}
