//! Sensitivity sweep: how the SIMT-aware scheduler's benefit changes with
//! the number of IOMMU page table walkers and the GPU L2 TLB size —
//! a finer-grained version of the paper's Figure 13.
//!
//! ```text
//! cargo run --release --example sensitivity_sweep
//! ```

use ptw_core::sched::SchedulerKind;
use ptw_sim::config::SystemConfig;
use ptw_sim::system::System;
use ptw_workloads::{build, BenchmarkId, Scale};

fn speedup(cfg: &SystemConfig, benchmark: BenchmarkId) -> f64 {
    let run = |sched| {
        let cfg = cfg.clone().with_scheduler(sched);
        System::new(cfg, build(benchmark, Scale::Small, 5))
            .run()
            .metrics
            .cycles as f64
    };
    run(SchedulerKind::Fcfs) / run(SchedulerKind::SimtAware)
}

fn main() {
    let benchmark = BenchmarkId::Mvt;
    println!(
        "SIMT-aware speedup over FCFS on {} as resources scale\n",
        benchmark.abbrev()
    );

    println!("walkers  speedup   (512-entry L2 TLB)");
    for walkers in [2usize, 4, 8, 16, 32] {
        let cfg = SystemConfig::paper_baseline().with_walkers(walkers);
        println!("{walkers:>7}  {:>6.2}x", speedup(&cfg, benchmark));
    }

    println!("\nL2 TLB   speedup   (8 walkers)");
    for entries in [128usize, 256, 512, 1024, 2048] {
        let cfg = SystemConfig::paper_baseline().with_gpu_l2_tlb_entries(entries);
        println!("{entries:>7}  {:>6.2}x", speedup(&cfg, benchmark));
    }

    println!(
        "\nThe paper's trend: more translation resources (walkers, TLB reach)\n\
         shrink the scheduling headroom (Figure 13); a larger IOMMU buffer\n\
         (lookahead) grows it (Figure 14)."
    );
}
